package sim

import (
	"runtime"
	"sort"
	"sync"

	"peersampling/internal/core"
)

// This file implements the staged parallel cycle driver: the engine that
// takes simulated experiments from the sequential loop's ~10^4 nodes per
// affordable cycle to 10^6 and beyond.
//
// A staged cycle runs the same per-node protocol work as RunCycle but on
// a bulk-synchronous schedule with three barriers:
//
//  1. initiate — every live node (in parallel, partitioned into
//     contiguous ID shards) ages its view, selects a peer with its own
//     RNG and builds its request into its slot's reusable buffer;
//  2. serve — requests are grouped into per-peer inboxes and every peer
//     (in parallel, sharded the same way) handles its inbox in ascending
//     initiator-ID order, writing each response into the initiator's
//     slot;
//  3. absorb — every initiator (in parallel) merges the response it
//     received.
//
// Determinism falls out of ownership, not locks: a node's state and RNG
// stream (a PCG keyed by the network seed and the node's ID) are only
// ever touched by the worker owning its shard, and the one place where
// ordering is contended — several initiators reaching the same peer —
// is fixed by sorting each inbox by initiator ID. The shard partition
// therefore never influences results: RunCycleSharded replays
// bit-identically for a fixed seed at any worker count and any
// GOMAXPROCS, which the determinism property tests pin.
//
// The schedule is deliberately not the sequential loop's: RunCycle
// interleaves exchanges (a node may be served, then age and initiate,
// within one cycle), while the staged driver ages and initiates
// everybody against the cycle-start state. Both are valid executions of
// the paper's asynchronous gossip model; they produce different —
// equally distributed — trajectories, so a given experiment should pick
// one driver and stay with it.

// shardedEngine is the reusable cross-cycle state of RunCycleSharded.
// All slices are grown once and recycled, so a steady-state cycle's
// allocation cost is a constant handful of escaping stage closures,
// independent of population size.
type shardedEngine struct {
	slots []exchangeSlot
	// inbox holds slot indices grouped by peer: the slots targeting peer
	// p live at inbox[offsets[p]:offsets[p+1]], in ascending initiator
	// order (slots are filled by ascending slot index, and slots are
	// ordered by initiator ID).
	inbox   []int32
	offsets []int32
	cursor  []int32
}

// exchangeSlot carries one initiator's exchange through the stages of a
// cycle. Its buffers persist across cycles: the request buffer is owned
// by the initiator's worker during stage 1 and read (and hop-aged) by
// the peer's worker during stage 2; the response buffer is written by
// the peer's worker during stage 2 and consumed by the initiator's
// worker during stage 3. The stage barriers make each handoff safe.
type exchangeSlot struct {
	initiator NodeID
	peer      NodeID
	ok        bool // peer selected and alive: the exchange proceeds
	hasResp   bool
	req       core.Request[NodeID]
	resp      core.Response[NodeID]
	reqBuf    []core.Descriptor[NodeID]
	respBuf   []core.Descriptor[NodeID]
}

// RunCycleSharded executes one staged protocol cycle across the given
// number of worker goroutines (0 or less selects GOMAXPROCS). Results
// are bit-identical for a fixed seed at every worker count; see the file
// comment for the schedule and why it differs from RunCycle's.
func (w *Network) RunCycleSharded(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if w.sharded == nil {
		w.sharded = &shardedEngine{}
	}
	eng := w.sharded

	// Initiators: every node live at the cycle start, ascending by ID so
	// slot order (and with it every inbox) is deterministic.
	w.scratch = w.appendLiveIDs(w.scratch[:0])
	live := w.scratch
	n := len(live)
	for len(eng.slots) < n {
		eng.slots = append(eng.slots, exchangeSlot{})
	}
	slots := eng.slots[:n]

	// Stage 1: age, select, build requests — node-local work only.
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			id := live[i]
			node := w.nodes[id]
			s := &slots[i]
			s.initiator = id
			s.ok = false
			s.hasResp = false
			node.AgeView()
			peer, err := node.SelectPeer()
			if err != nil {
				continue // empty view: nothing to gossip with this cycle
			}
			s.peer = peer
			s.req, s.reqBuf = node.MakeRequestInto(s.reqBuf)
			if !w.alive[peer] {
				node.OnExchangeFailed(peer)
				continue
			}
			s.ok = true
		}
	})

	// Group requests into per-peer inboxes with a counting sort — cheap,
	// sequential and deterministic.
	total := len(w.nodes)
	for len(eng.offsets) < total+1 {
		eng.offsets = append(eng.offsets, 0)
	}
	offsets := eng.offsets[:total+1]
	clear(offsets)
	entries := 0
	for i := range slots {
		if slots[i].ok {
			offsets[slots[i].peer+1]++
			entries++
		}
	}
	for p := 1; p <= total; p++ {
		offsets[p] += offsets[p-1]
	}
	for len(eng.cursor) < total {
		eng.cursor = append(eng.cursor, 0)
	}
	cursor := eng.cursor[:total]
	copy(cursor, offsets[:total])
	for len(eng.inbox) < entries {
		eng.inbox = append(eng.inbox, 0)
	}
	inbox := eng.inbox[:entries]
	for i := range slots {
		if slots[i].ok {
			p := slots[i].peer
			inbox[cursor[p]] = int32(i)
			cursor[p]++
		}
	}

	// Stage 2: serve inboxes. Workers split the peer ID space so that
	// each gets a contiguous peer range carrying roughly equal inbox
	// entries; a peer's whole inbox stays with one worker.
	parallelRanges(workers, workers, func(k, _ int) {
		pLo := peerCut(offsets, k, workers, entries)
		pHi := peerCut(offsets, k+1, workers, entries)
		for p := pLo; p < pHi; p++ {
			node := w.nodes[p]
			for j := offsets[p]; j < offsets[p+1]; j++ {
				s := &slots[inbox[j]]
				s.resp, s.respBuf, s.hasResp = node.HandleRequestInto(s.req, s.respBuf)
			}
		}
	})

	// Stage 3: absorb responses — initiator-local work only.
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := &slots[i]
			if s.ok && s.hasResp {
				w.nodes[s.initiator].HandleResponse(s.resp)
			}
		}
	})

	w.cycle++
}

// RunSharded executes n staged cycles with the given worker count.
func (w *Network) RunSharded(n, workers int) {
	for i := 0; i < n; i++ {
		w.RunCycleSharded(workers)
	}
}

// peerCut returns the k-th boundary (of workers+1) of the peer ID space:
// the first peer whose inbox starts at or beyond the k-th equal share of
// all inbox entries. Cuts are non-decreasing in k, so the ranges
// [cut(k), cut(k+1)) are disjoint and cover every peer.
func peerCut(offsets []int32, k, workers, entries int) int32 {
	if k >= workers {
		return int32(len(offsets) - 1)
	}
	target := int32(k * entries / workers)
	// Smallest p with offsets[p] >= target; offsets is non-decreasing.
	return int32(sort.Search(len(offsets)-1, func(p int) bool {
		return offsets[p] >= target
	}))
}

// parallelRanges partitions [0, n) into up to workers contiguous chunks
// and runs fn on each concurrently, returning when all are done. With one
// worker (or one item) it runs inline.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
