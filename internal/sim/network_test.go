package sim

import (
	"testing"

	"peersampling/internal/core"
)

func testConfig(proto core.Protocol) Config {
	return Config{Protocol: proto, ViewSize: 5, Seed: 1}
}

func seedRing(t *testing.T, w *Network, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w.Add(nil)
	}
	for i := 0; i < n; i++ {
		w.Node(NodeID(i)).Bootstrap([]core.Descriptor[NodeID]{
			{Addr: NodeID((i + 1) % n), Hop: 0},
		})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Protocol: core.Newscast, ViewSize: 0}); err == nil {
		t.Error("zero view size accepted")
	}
	if _, err := New(testConfig(core.Newscast)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestAddAndAccessors(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	id := w.Add([]core.Descriptor[NodeID]{{Addr: 7, Hop: 0}})
	if id != 0 || w.Size() != 1 || w.LiveCount() != 1 || !w.Alive(0) {
		t.Error("accessors wrong after Add")
	}
	if w.Config().ViewSize != 5 {
		t.Error("Config() wrong")
	}
	// Bootstrap descriptor for a not-yet-existing node is stored as-is;
	// views may name unknown peers (they count as dead until they join).
	if !w.Node(0).View().Contains(7) {
		t.Error("bootstrap descriptor missing")
	}
}

func TestRunCycleSpreadsMembership(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 10)
	w.Run(20)
	if w.Cycle() != 20 {
		t.Errorf("cycle = %d want 20", w.Cycle())
	}
	// After 20 pushpull cycles on a 10-node ring every view must be full.
	for i := 0; i < 10; i++ {
		if got := w.Node(NodeID(i)).View().Len(); got != 5 {
			t.Errorf("node %d view len = %d want 5", i, got)
		}
	}
	snap := w.TakeSnapshot()
	if !snap.Graph.Components().Connected() {
		t.Error("overlay disconnected after 20 cycles")
	}
}

func TestKillAndDeadLinks(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 10)
	w.Run(10)
	if w.DeadLinks() != 0 {
		t.Errorf("dead links before any failure = %d", w.DeadLinks())
	}
	w.Kill(3)
	w.Kill(3) // idempotent
	if w.LiveCount() != 9 || w.Alive(3) {
		t.Error("kill bookkeeping wrong")
	}
	dead := w.DeadLinks()
	if dead == 0 {
		t.Error("no dead links after killing a known node")
	}
	// Dead links equal the number of live views containing node 3.
	count := 0
	for i := 0; i < 10; i++ {
		if i != 3 && w.Node(NodeID(i)).View().Contains(3) {
			count++
		}
	}
	if dead != count {
		t.Errorf("dead links = %d want %d", dead, count)
	}
}

func TestKillFraction(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 20)
	killed := w.KillFraction(0.5)
	if len(killed) != 10 || w.LiveCount() != 10 {
		t.Errorf("killed %d, live %d", len(killed), w.LiveCount())
	}
	for _, id := range killed {
		if w.Alive(id) {
			t.Errorf("killed node %d still alive", id)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction did not panic")
		}
	}()
	w.KillFraction(1.5)
}

func TestExchangeWithDeadPeerLeavesStateUntouched(t *testing.T) {
	w := MustNew(Config{Protocol: core.Newscast, ViewSize: 5, Seed: 3})
	// Node 0 knows only node 1, which is dead: its exchange must fail and
	// leave the view membership exactly as it was; only per-cycle aging
	// may touch the hop counts.
	w.Add(nil)
	w.Add(nil)
	w.Node(0).Bootstrap([]core.Descriptor[NodeID]{{Addr: 1, Hop: 2}})
	w.Node(1).Bootstrap([]core.Descriptor[NodeID]{{Addr: 0, Hop: 2}})
	w.Kill(1)
	before := w.Node(0).View().Descriptors()
	w.RunCycle()
	after := w.Node(0).View().Descriptors()
	if len(after) != len(before) {
		t.Fatalf("view size changed across failed exchange: %v -> %v", before, after)
	}
	if after[0].Addr != before[0].Addr || after[0].Hop != before[0].Hop+1 {
		t.Errorf("want same membership aged by one cycle, got %v -> %v", before, after)
	}
	if w.Node(0).FailedExchanges() != 1 {
		t.Errorf("failed exchanges = %d want 1", w.Node(0).FailedExchanges())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		w := MustNew(Config{Protocol: core.Lpbcast, ViewSize: 4, Seed: 42})
		seedRing(t, w, 16)
		w.Run(15)
		degs := make([]int, 16)
		snap := w.TakeSnapshot()
		for i := range degs {
			degs[i], _ = snap.DegreeOf(NodeID(i))
		}
		return degs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("degree of node %d differs between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSnapshotExcludesDeadNodes(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 10)
	w.Run(10)
	w.Kill(0)
	snap := w.TakeSnapshot()
	if snap.Graph.NumNodes() != 9 {
		t.Errorf("snapshot has %d nodes want 9", snap.Graph.NumNodes())
	}
	if _, live := snap.DegreeOf(0); live {
		t.Error("dead node reported live")
	}
	if _, live := snap.DegreeOf(99); live {
		t.Error("unknown node reported live")
	}
	for compact, id := range snap.IDs {
		if id == 0 {
			t.Errorf("dead node 0 appears at compact index %d", compact)
		}
	}
}

func TestObserveExactAndSampled(t *testing.T) {
	// View size 15 on 30 nodes keeps Newscast-style head selection well
	// away from its genuine small-scale fragmentation regime.
	w := MustNew(Config{Protocol: core.Newscast, ViewSize: 15, Seed: 1})
	seedRing(t, w, 30)
	w.Run(20)
	exact := w.Observe(MetricsConfig{})
	if exact.LiveNodes != 30 || exact.Cycle != 20 {
		t.Errorf("observation header wrong: %+v", exact)
	}
	if exact.Components != 1 || exact.Largest != 30 {
		t.Errorf("connectivity wrong: %+v", exact)
	}
	if exact.AvgDegree < 15 || exact.AvgDegree > 29 {
		t.Errorf("avg degree %v implausible for c=15 on 30 nodes", exact.AvgDegree)
	}
	if exact.MinDegree < 1 || exact.MaxDegree < exact.MinDegree {
		t.Errorf("degree range wrong: %+v", exact)
	}
	sampled := w.Observe(MetricsConfig{PathSources: 30, ClusteringSample: 30, Seed: 9})
	if sampled.PathLen != exact.PathLen {
		t.Errorf("full-sample path length %v != exact %v", sampled.PathLen, exact.PathLen)
	}
	if sampled.Clustering != exact.Clustering {
		t.Errorf("full-sample clustering %v != exact %v", sampled.Clustering, exact.Clustering)
	}
}

func TestDegrees(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 12)
	w.Run(10)
	w.Kill(5)
	degs := w.Degrees()
	if len(degs) != 11 {
		t.Errorf("degrees for %d nodes want 11", len(degs))
	}
	if _, ok := degs[5]; ok {
		t.Error("dead node has a degree entry")
	}
}

func TestSamplePeer(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 10)
	w.Run(5)
	p, err := w.SamplePeer(0)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Node(0).View().Contains(p) {
		t.Errorf("sampled peer %d not in node 0's view", p)
	}
}

func TestAllStudiedProtocolsStayConnectedFromRing(t *testing.T) {
	for _, proto := range core.StudiedProtocols() {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			w := MustNew(Config{Protocol: proto, ViewSize: 15, Seed: 7})
			seedRing(t, w, 60)
			w.Run(60)
			snap := w.TakeSnapshot()
			if !snap.Graph.Components().Connected() {
				t.Errorf("%v produced a disconnected overlay", proto)
			}
			lo, _ := snap.Graph.MinMaxDegree()
			if lo < 1 {
				t.Errorf("%v produced an isolated node", proto)
			}
		})
	}
}
