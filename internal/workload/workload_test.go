package workload

import (
	"context"
	"testing"
	"time"

	"peersampling/aggregate"
	"peersampling/broadcast"
	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/runtime"
	"peersampling/internal/transport"
)

func TestNewBuildsEngines(t *testing.T) {
	e, err := New(config.WorkloadSection{
		Kind: config.WorkloadBroadcast, Fanout: 2, Mode: "infect-forever",
	})
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if e.Topic() != broadcast.Topic {
		t.Fatalf("broadcast engine topic = %q", e.Topic())
	}

	e, err = New(config.WorkloadSection{Kind: config.WorkloadAggregate, Initial: 7.5})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if e.Topic() != aggregate.Topic {
		t.Fatalf("aggregate engine topic = %q", e.Topic())
	}
	if got := e.Snapshot().Value; got != 7.5 {
		t.Fatalf("aggregate initial value = %v, want 7.5", got)
	}
}

func TestNewRejectsBadSections(t *testing.T) {
	bad := []config.WorkloadSection{
		{},                  // no kind
		{Kind: "mapreduce"}, // unknown kind
		{Kind: config.WorkloadBroadcast, Fanout: 2, Mode: "sideways"},       // bad mode
		{Kind: config.WorkloadBroadcast, Fanout: 0, Mode: "infect-forever"}, // engine rejects fanout
	}
	for _, ws := range bad {
		if _, err := New(ws); err == nil {
			t.Errorf("New(%+v) accepted, want error", ws)
		}
	}
}

// nopTransport has no app-payload capability, so Attach must refuse it.
type nopTransport struct{}

func (nopTransport) Addr() string { return "stub:0" }
func (nopTransport) Exchange(context.Context, string, transport.Request) (transport.Response, bool, error) {
	return transport.Response{}, false, nil
}
func (nopTransport) Close() error { return nil }

func TestAttachRejectsNonAppTransport(t *testing.T) {
	node, err := runtime.New(runtime.Config{Protocol: core.Newscast, ViewSize: 4},
		func(transport.Handler) (transport.Transport, error) { return nopTransport{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	e, err := New(config.WorkloadSection{Kind: config.WorkloadAggregate})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(node, e, time.Second); err == nil {
		t.Fatal("Attach over an app-less transport succeeded, want error")
	}
}

func TestNodeSourceAppSnapshot(t *testing.T) {
	e, err := New(config.WorkloadSection{Kind: config.WorkloadAggregate, Initial: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := &NodeSource{engine: e}
	snap, ok := s.AppSnapshot()
	if !ok || snap.Value != 3 {
		t.Fatalf("AppSnapshot = %+v, %v; want value 3, true", snap, ok)
	}
	empty := &NodeSource{}
	if _, ok := empty.AppSnapshot(); ok {
		t.Fatal("engine-less NodeSource reported an app snapshot")
	}
}

// TestAttachSpreadsOverTCP runs the full live path in miniature: two TCP
// nodes, a broadcast engine attached to each, one engine seeded
// directly; the rumor must cross the process's real sockets and infect
// the other engine via its node's own getPeer.
func TestAttachSpreadsOverTCP(t *testing.T) {
	const period = 5 * time.Millisecond
	type member struct {
		node *runtime.Node
		att  *Attachment
		src  *NodeSource
	}
	newMember := func() member {
		factory, err := transport.NewFactory("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node, err := runtime.New(runtime.Config{
			Protocol: core.Newscast, ViewSize: 4, Period: period,
		}, factory)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(config.WorkloadSection{
			Kind: config.WorkloadBroadcast, Fanout: 2, Mode: "infect-forever",
		})
		if err != nil {
			t.Fatal(err)
		}
		att, err := Attach(node, e, period)
		if err != nil {
			t.Fatal(err)
		}
		return member{node: node, att: att, src: NewNodeSource(node, e)}
	}

	a, b := newMember(), newMember()
	defer func() {
		for _, m := range []member{a, b} {
			m.att.Close()
			m.node.Close()
		}
	}()
	if err := a.node.Init([]string{b.node.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.node.Init([]string{a.node.Addr()}); err != nil {
		t.Fatal(err)
	}
	for _, m := range []member{a, b} {
		if err := m.node.Start(); err != nil {
			t.Fatal(err)
		}
		m.att.Runner.Start()
	}

	// Seed a's engine the way a remote seeder would: one payload on the
	// broadcast topic.
	a.att.Mux.Handle(transport.AppMessage{
		From: "seeder", Topic: broadcast.Topic, Payload: []byte("the-rumor"),
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, ok := b.src.AppSnapshot()
		if ok && snap.Infected >= 1 {
			if snap.Received == 0 {
				t.Fatal("engine infected without receiving a payload")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rumor never reached the second node; snapshot %+v", snap)
		}
		time.Sleep(period)
	}
}
