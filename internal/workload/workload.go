// Package workload wires the address-generic application tier
// (internal/app) onto a live runtime node from configuration: it builds
// the engine a config.WorkloadSection describes, attaches it to the
// node's transport app-payload path and sampling service, and wraps the
// node so the engine's counters flow through internal/metrics alongside
// the node's own. The daemon's workload plugin and the fleet drivers
// are the two consumers.
package workload

import (
	"fmt"
	"time"

	"peersampling/aggregate"
	"peersampling/broadcast"
	"peersampling/internal/app"
	"peersampling/internal/config"
	"peersampling/internal/runtime"
)

// New builds the engine ws describes. The section must already have
// passed config.Validate; unknown kinds still error rather than panic so
// hand-built sections fail loudly.
func New(ws config.WorkloadSection) (app.Engine[string], error) {
	switch ws.Kind {
	case config.WorkloadBroadcast:
		mode, err := broadcast.ParseMode(ws.Mode)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		e, err := broadcast.NewEngine[string](ws.Fanout, mode, ws.TTL)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		return e, nil
	case config.WorkloadAggregate:
		return aggregate.NewEngine[string](ws.Initial), nil
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", ws.Kind)
	}
}

// Attachment is one engine running against one live node: the mux
// serving the node's incoming app payloads and the runner driving the
// engine's rounds. Close stops the rounds; the mux stays installed (a
// closed engine simply stops initiating, matching a node that keeps
// answering passive exchanges after its active thread stops).
type Attachment struct {
	Mux    *app.Mux
	Runner *app.Runner
}

// Close stops the attachment's round loop.
func (a *Attachment) Close() { a.Runner.Close() }

// Attach installs e on node: incoming payloads on the engine's topic
// route to it through a mux, and a runner (not yet started — call
// Runner.Start) ticks its rounds every period against the node's
// sampling service and transport. It fails when the node's transport
// cannot carry app payloads.
func Attach(node *runtime.Node, e app.Engine[string], period time.Duration) (*Attachment, error) {
	mux := app.NewMux(node.Addr())
	mux.Register(e)
	if !node.SetAppHandler(mux.Handle) {
		return nil, fmt.Errorf("workload: transport cannot carry app payloads")
	}
	src := app.SamplerSource{GetPeer: node.GetPeer}
	ep := &app.NodeEndpoint{Addr: node.Addr(), Topic: e.Topic(), Send: node.SendApp}
	return &Attachment{Mux: mux, Runner: app.NewRunner(e, src, ep, period)}, nil
}

// NodeSource pairs a runtime node with its workload engine as one
// metrics source: embedding keeps every Node capability (Source,
// LatencySource) and AppSnapshot adds the metrics.AppSource one.
type NodeSource struct {
	*runtime.Node
	engine app.Engine[string]
}

// NewNodeSource wraps node and engine for collector registration.
func NewNodeSource(node *runtime.Node, e app.Engine[string]) *NodeSource {
	return &NodeSource{Node: node, engine: e}
}

// AppSnapshot implements metrics.AppSource.
func (s *NodeSource) AppSnapshot() (app.Snapshot, bool) {
	if s.engine == nil {
		return app.Snapshot{}, false
	}
	return s.engine.Snapshot(), true
}
