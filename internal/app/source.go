package app

import (
	"math/rand/v2"

	"peersampling/internal/sim"
)

// Source is the simulation-side factory of per-node peer sources: one
// population, For(id) views it from one node. Step advances the source by
// one round (a gossip cycle of the underlying overlay; the uniform source
// does nothing). It generalises the per-package UniformSource /
// OverlaySource shims the workloads used to duplicate.
type Source[A comparable] interface {
	For(id A) PeerSource[A]
	Size() int
	Step()
}

// Uniform is the idealised peer source the gossip literature assumes:
// every draw returns an independent uniform random peer. All nodes share
// one RNG stream, so draws consume it in driver order — which keeps the
// workloads' historical fixed-seed results intact (the salt selects the
// per-workload stream the old shims used).
type Uniform struct {
	n   int
	rng *rand.Rand
}

var _ Source[sim.NodeID] = (*Uniform)(nil)

// NewUniform returns a uniform source over n nodes. The salt separates
// RNG streams between workloads sharing a seed.
func NewUniform(n int, seed, salt uint64) *Uniform {
	return &Uniform{n: n, rng: rand.New(rand.NewPCG(seed, salt))}
}

// For implements Source.
func (u *Uniform) For(id sim.NodeID) PeerSource[sim.NodeID] {
	return uniformDraw{u: u, id: id}
}

// Size implements Source.
func (u *Uniform) Size() int { return u.n }

// Step implements Source (no-op).
func (u *Uniform) Step() {}

type uniformDraw struct {
	u  *Uniform
	id sim.NodeID
}

// Draw implements PeerSource: a uniform peer other than the node itself.
func (d uniformDraw) Draw() (sim.NodeID, bool) {
	if d.u.n < 2 {
		return 0, false
	}
	for {
		p := sim.NodeID(d.u.rng.IntN(d.u.n))
		if p != d.id {
			return p, true
		}
	}
}

// Overlay draws partners from the live views of a peer sampling
// simulation; every workload round advances the overlay by one gossip
// cycle, so the application and the sampling layer evolve together
// exactly as they would in a deployment.
type Overlay struct {
	net *sim.Network
}

var _ Source[sim.NodeID] = (*Overlay)(nil)

// NewOverlay adapts a simulation (construct it with
// peersampling.NewRandomOverlay or the scenario builders).
func NewOverlay(net *sim.Network) *Overlay { return &Overlay{net: net} }

// For implements Source.
func (o *Overlay) For(id sim.NodeID) PeerSource[sim.NodeID] {
	return overlayDraw{net: o.net, id: id}
}

// Size implements Source.
func (o *Overlay) Size() int { return o.net.Size() }

// Step implements Source: one gossip cycle of the overlay.
func (o *Overlay) Step() { o.net.RunCycle() }

type overlayDraw struct {
	net *sim.Network
	id  sim.NodeID
}

// Draw implements PeerSource via the simulated getPeer().
func (d overlayDraw) Draw() (sim.NodeID, bool) {
	p, err := d.net.SamplePeer(d.id)
	if err != nil {
		return 0, false // empty view: nothing to gossip with this round
	}
	return p, true
}
