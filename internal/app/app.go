// Package app is the address-generic application tier of the peer
// sampling service: the contract between workload engines (epidemic
// broadcast, push-pull aggregation) and whatever carries their payloads.
//
// The paper frames peer sampling as a *service* consumed by epidemic
// applications through getPeer(). This package pins that boundary down as
// two tiny interfaces — PeerSource (draw a gossip partner) and Endpoint
// (deliver an app payload to one) — parameterised over the address type,
// so the same engine code runs against three backends:
//
//   - the cycle simulator (addresses are sim.NodeID, delivery is a
//     synchronous call; see Uniform and Overlay),
//   - a live runtime node (addresses are "host:port" strings, GetPeer is
//     the source and the transport's app-payload frames the endpoint; see
//     SamplerSource, NodeEndpoint and Runner),
//   - the daemon (a workload plugin wiring the above from config).
//
// Engines are round-driven: each Tick draws partners and delivers
// payloads; incoming payloads arrive through OnMessage. A Snapshot of
// counters flows into internal/metrics.
package app

// PeerSource yields gossip partners for one node — the paper's getPeer()
// reduced to its essence. Draw reports false when no partner is known
// (empty view, population of one).
type PeerSource[A comparable] interface {
	Draw() (A, bool)
}

// Endpoint delivers application payloads from one node to its peers.
// Deliver sends payload to peer and, when wantReply is set, returns the
// peer's reply payload; replied reports whether one arrived. Push-only
// delivery is best-effort, mirroring transport.Exchange.
type Endpoint[A comparable] interface {
	// Self returns this endpoint's own address, which engines use to
	// stamp outgoing messages and recognise themselves.
	Self() A
	Deliver(peer A, payload []byte, wantReply bool) (reply []byte, replied bool, err error)
}

// Engine is a round-driven workload running over a peer source and an
// endpoint. Implementations must be safe for concurrent use: on a live
// node Tick (the round driver) and OnMessage (the transport's delivery
// path) run on different goroutines.
type Engine[A comparable] interface {
	// Topic names the engine's payload stream; the live mux routes
	// incoming messages by it.
	Topic() string
	// Tick runs one round: draw partners from src, deliver payloads via
	// ep, absorb replies.
	Tick(src PeerSource[A], ep Endpoint[A])
	// OnMessage absorbs one incoming payload and returns the reply when
	// the message warrants one. The payload is only valid for the
	// duration of the call (transport buffer ownership); engines that
	// retain it must copy.
	OnMessage(from A, payload []byte) (reply []byte, hasReply bool)
	// Snapshot reports the engine's counters and headline gauge.
	Snapshot() Snapshot
}

// Snapshot is the observable state of one workload engine, shaped for
// the metrics pipeline (JSON-tagged so it rides the fleet agent's
// /snapshot endpoint unchanged).
type Snapshot struct {
	// Workload names the engine kind ("broadcast", "aggregate").
	Workload string `json:"workload"`
	// Rounds counts Tick calls; Sent and Received count app payloads
	// delivered and absorbed; Failures counts deliveries that errored.
	Rounds   uint64 `json:"rounds"`
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	Failures uint64 `json:"failures"`
	// Infected is 1 when a broadcast engine holds the rumor, else 0.
	Infected float64 `json:"infected"`
	// Value is an aggregate engine's current estimate.
	Value float64 `json:"value"`
}
