package app

import (
	"context"
	"sync"
	"time"

	"peersampling/internal/transport"
)

// Mux routes incoming application messages to workload engines by topic
// and implements the transport.AppHandler shape — the passive side of
// the live backend. Messages on unregistered topics are dropped (a pull
// initiator sees ok=false or a timeout, matching the transports'
// no-handler behaviour).
type Mux struct {
	self string

	mu      sync.RWMutex
	engines map[string]Engine[string]
}

// NewMux returns an empty mux stamping replies with the node's address.
func NewMux(self string) *Mux {
	return &Mux{self: self, engines: make(map[string]Engine[string])}
}

// Register adds an engine under its topic, replacing any previous one.
func (m *Mux) Register(e Engine[string]) {
	m.mu.Lock()
	m.engines[e.Topic()] = e
	m.mu.Unlock()
}

// Engines returns the registered engines (metrics walks them).
func (m *Mux) Engines() []Engine[string] {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Engine[string], 0, len(m.engines))
	for _, e := range m.engines {
		out = append(out, e)
	}
	return out
}

// Handle implements the transport.AppHandler contract.
func (m *Mux) Handle(msg transport.AppMessage) (transport.AppMessage, bool) {
	m.mu.RLock()
	e, ok := m.engines[msg.Topic]
	m.mu.RUnlock()
	if !ok {
		return transport.AppMessage{}, false
	}
	reply, hasReply := e.OnMessage(msg.From, msg.Payload)
	if !hasReply {
		return transport.AppMessage{}, false
	}
	return transport.AppMessage{From: m.self, Topic: msg.Topic, Payload: reply}, true
}

// SamplerSource adapts the peer sampling service's getPeer() to
// PeerSource[string] — the live analogue of Uniform and Overlay.
type SamplerSource struct {
	// GetPeer is runtime.Node.GetPeer or any compatible sampler.
	GetPeer func() (string, error)
}

var _ PeerSource[string] = SamplerSource{}

// Draw implements PeerSource.
func (s SamplerSource) Draw() (string, bool) {
	peer, err := s.GetPeer()
	if err != nil {
		return "", false // empty view: wait for the overlay to bootstrap
	}
	return peer, true
}

// NodeEndpoint delivers payloads on one topic through a runtime node's
// transport — the live analogue of the simulators' synchronous call.
type NodeEndpoint struct {
	// Addr is the node's own transport address.
	Addr string
	// Topic is the engine's payload stream.
	Topic string
	// Timeout bounds one delivery; zero selects a second.
	Timeout time.Duration
	// Send is runtime.Node.SendApp or any compatible carrier.
	Send func(ctx context.Context, peer, topic string, payload []byte, wantReply bool) ([]byte, bool, error)
}

var _ Endpoint[string] = (*NodeEndpoint)(nil)

// Self implements Endpoint.
func (e *NodeEndpoint) Self() string { return e.Addr }

// Deliver implements Endpoint.
func (e *NodeEndpoint) Deliver(peer string, payload []byte, wantReply bool) ([]byte, bool, error) {
	timeout := e.Timeout
	if timeout == 0 {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return e.Send(ctx, peer, e.Topic, payload, wantReply)
}

// Runner drives one engine's rounds on a period ticker against a live
// source and endpoint — the workload analogue of the runtime node's
// active thread.
type Runner struct {
	engine Engine[string]
	src    PeerSource[string]
	ep     Endpoint[string]
	period time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
	closed  bool
}

// NewRunner wires an engine to its live source and endpoint. period is
// the round length; zero selects a second.
func NewRunner(e Engine[string], src PeerSource[string], ep Endpoint[string], period time.Duration) *Runner {
	if period <= 0 {
		period = time.Second
	}
	return &Runner{engine: e, src: src, ep: ep, period: period}
}

// Engine returns the engine the runner drives.
func (r *Runner) Engine() Engine[string] { return r.engine }

// Start launches the round loop. Start is idempotent until Close.
func (r *Runner) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started || r.closed {
		return
	}
	r.started = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
}

// Close stops the round loop. Close is idempotent.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	started := r.started
	stop, done := r.stop, r.done
	r.mu.Unlock()
	if started {
		close(stop)
		<-done
	}
}

func (r *Runner) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			r.engine.Tick(r.src, r.ep)
		}
	}
}
