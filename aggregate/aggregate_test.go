package aggregate

import (
	"math"
	"testing"

	"peersampling/internal/app"
	"peersampling/internal/core"
	"peersampling/internal/graph"
	"peersampling/internal/sim"

	"math/rand/v2"
)

// uniform and overlaySrc build the peer sources on this workload's
// historical RNG stream.
func uniform(n int, seed uint64) *app.Uniform { return app.NewUniform(n, seed, UniformSalt) }

func overlaySrc(w *sim.Network) *app.Overlay { return app.NewOverlay(w) }

func newOverlay(t *testing.T, n, c int, warmup int) *sim.Network {
	t.Helper()
	w := sim.MustNew(sim.Config{Protocol: core.Newscast, ViewSize: c, Seed: 15})
	for i := 0; i < n; i++ {
		w.Add(nil)
	}
	rng := rand.New(rand.NewPCG(16, 16))
	for id, view := range graph.RandomOutViews(n, c, rng) {
		descs := make([]core.Descriptor[sim.NodeID], len(view))
		for i, p := range view {
			descs[i] = core.Descriptor[sim.NodeID]{Addr: p, Hop: 0}
		}
		w.Node(sim.NodeID(id)).Bootstrap(descs)
	}
	w.Run(warmup)
	return w
}

func linearValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestRunValidation(t *testing.T) {
	src := uniform(10, 1)
	if _, err := Run(linearValues(5), Config{Rounds: 3}, src); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Run(linearValues(10), Config{Rounds: 0}, src); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestMassConservationAndConvergence(t *testing.T) {
	const n = 256
	values := linearValues(n)
	res, err := Run(values, Config{Rounds: 30, Seed: 2}, uniform(n, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The mean is invariant under pairwise averaging.
	sum := 0.0
	for _, e := range res.Estimates {
		sum += e
	}
	if math.Abs(sum/float64(n)-res.TrueMean) > 1e-9 {
		t.Errorf("mass not conserved: mean drifted to %v from %v", sum/float64(n), res.TrueMean)
	}
	// Variance must have collapsed by many orders of magnitude.
	first, last := res.VariancePerRound[0], res.VariancePerRound[len(res.VariancePerRound)-1]
	if last > first*1e-6 {
		t.Errorf("variance only fell from %v to %v in 30 rounds", first, last)
	}
	if res.MaxError > 1 {
		t.Errorf("max error %v too large", res.MaxError)
	}
	// The input slice is untouched.
	if values[0] != 0 || values[n-1] != float64(n-1) {
		t.Error("Run mutated its input")
	}
}

func TestConvergenceRateNearTheory(t *testing.T) {
	// Under uniform sampling the variance decays by ~1/(2*sqrt(e)) ≈ 0.30
	// per round (Jelasity-Montresor-Babaoglu analysis for this exchange
	// pattern). Accept a generous band around it.
	const n = 1024
	res, err := Run(linearValues(n), Config{Rounds: 20, Seed: 4}, uniform(n, 5))
	if err != nil {
		t.Fatal(err)
	}
	rate := res.ConvergenceRate()
	if rate < 0.15 || rate > 0.5 {
		t.Errorf("per-round variance factor %v outside [0.15, 0.5]", rate)
	}
}

func TestOverlayAggregationConverges(t *testing.T) {
	const n, c = 400, 15
	w := newOverlay(t, n, c, 30)
	res, err := Run(linearValues(n), Config{Rounds: 40, Seed: 6}, overlaySrc(w))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.VariancePerRound[0], res.VariancePerRound[len(res.VariancePerRound)-1]
	if last > first*1e-4 {
		t.Errorf("overlay aggregation barely converged: %v -> %v", first, last)
	}
	if math.Abs(res.Estimates[0]-res.TrueMean) > res.TrueMean*0.05 {
		t.Errorf("node 0 estimate %v far from mean %v", res.Estimates[0], res.TrueMean)
	}
}

func TestOverlayVsUniformRate(t *testing.T) {
	// Non-uniform sampling slows aggregation, but only by a modest
	// factor — the qualitative claim behind using gossip overlays at all.
	const n, c = 400, 15
	w := newOverlay(t, n, c, 30)
	overlay, err := Run(linearValues(n), Config{Rounds: 20, Seed: 7}, overlaySrc(w))
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Run(linearValues(n), Config{Rounds: 20, Seed: 7}, uniform(n, 8))
	if err != nil {
		t.Fatal(err)
	}
	or, ur := overlay.ConvergenceRate(), uniform.ConvergenceRate()
	if or > ur*2.5 {
		t.Errorf("overlay rate %v much worse than uniform %v", or, ur)
	}
}

func TestSizeEstimation(t *testing.T) {
	const n = 512
	values := make([]float64, n)
	values[0] = 1
	res, err := Run(values, Config{Rounds: 40, Seed: 9}, uniform(n, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, n - 1} {
		est := SizeEstimate(res.Estimates[id])
		if est < float64(n)*0.9 || est > float64(n)*1.1 {
			t.Errorf("node %d size estimate %v want ~%d", id, est, n)
		}
	}
	if SizeEstimate(0) != 0 || SizeEstimate(-1) != 0 {
		t.Error("non-positive estimates must map to 0")
	}
}

func TestUniformSourceTiny(t *testing.T) {
	src := uniform(1, 1)
	if _, ok := src.For(0).Draw(); ok {
		t.Error("single-node source returned a peer")
	}
	src2 := uniform(2, 1)
	p, ok := src2.For(0).Draw()
	if !ok || p != 1 {
		t.Errorf("two-node source returned %d,%v", p, ok)
	}
}

func TestConvergenceRateEdgeCases(t *testing.T) {
	if (Result{}).ConvergenceRate() != 1 {
		t.Error("empty result rate != 1")
	}
	r := Result{VariancePerRound: []float64{0, 0}}
	if r.ConvergenceRate() != 1 {
		t.Error("zero initial variance rate != 1")
	}
	r = Result{VariancePerRound: []float64{4, 1, 0}}
	if got := r.ConvergenceRate(); got <= 0 || got >= 1 {
		t.Errorf("rate with exact convergence = %v", got)
	}
	r = Result{VariancePerRound: []float64{0, 0, 0}}
	r.VariancePerRound[0] = 1
	r.VariancePerRound[1] = 0
	r.VariancePerRound[2] = 0
	if got := r.ConvergenceRate(); got != 0 {
		t.Errorf("all-zero tail rate = %v want 0", got)
	}
}
