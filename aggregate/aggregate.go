// Package aggregate implements gossip-based push-pull averaging on top of
// a peer sampling service — the aggregation application class the paper
// motivates (its references [16, 14, 13]: Kempe et al. and the
// Jelasity/Montresor line of proactive aggregation).
//
// Every node holds a numeric value; in each round every node draws one
// peer from the sampling service and the pair replaces both values with
// their mean. Under ideal uniform sampling the empirical variance decays
// exponentially (by roughly 1/(2*sqrt(e)) per round); running the same
// protocol over a gossip overlay measures how much the non-uniformity of
// real peer sampling costs.
//
// Setting one node's value to 1 and all others to 0 turns the aggregator
// into a network size estimator: every value converges to 1/N.
package aggregate

import (
	"fmt"
	"math"
	"math/rand/v2"

	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// PeerSource provides each node with one gossip partner per round.
type PeerSource interface {
	// PeerOf returns a gossip partner for node id, or false if the node
	// currently knows no peers.
	PeerOf(id int32) (int32, bool)
	// Size returns the population size.
	Size() int
	// Step advances the source by one round.
	Step()
}

// Config parameterises an averaging run.
type Config struct {
	// Rounds is the number of gossip rounds to execute.
	Rounds int
	// Seed drives the per-round node ordering.
	Seed uint64
}

// Result reports one averaging run.
type Result struct {
	// TrueMean is the invariant mean of the initial values.
	TrueMean float64
	// VariancePerRound[r] is the empirical variance of node estimates
	// after round r (index 0 is the initial state).
	VariancePerRound []float64
	// Estimates holds the final per-node estimates.
	Estimates []float64
	// MaxError is the largest |estimate - TrueMean| at the end.
	MaxError float64
}

// ConvergenceRate returns the geometric mean per-round variance reduction
// factor over the run (smaller is faster); 1 means no convergence.
func (r Result) ConvergenceRate() float64 {
	v := r.VariancePerRound
	if len(v) < 2 || v[0] == 0 {
		return 1
	}
	last := v[len(v)-1]
	if last <= 0 {
		// Converged to exactly zero variance within the run; report the
		// strongest defensible bound from the last positive value.
		for i := len(v) - 1; i > 0; i-- {
			if v[i] > 0 {
				return math.Pow(v[i]/v[0], 1/float64(i))
			}
		}
		return 0
	}
	return math.Pow(last/v[0], 1/float64(len(v)-1))
}

// Run executes push-pull averaging of the given initial values over the
// peer source. The values slice is not modified.
func Run(values []float64, cfg Config, src PeerSource) (Result, error) {
	n := src.Size()
	if len(values) != n {
		return Result{}, fmt.Errorf("aggregate: %d values for %d nodes", len(values), n)
	}
	if cfg.Rounds <= 0 {
		return Result{}, fmt.Errorf("aggregate: rounds must be positive, got %d", cfg.Rounds)
	}
	est := append([]float64(nil), values...)
	res := Result{
		TrueMean:         stats.Mean(est),
		VariancePerRound: []float64{stats.Variance(est)},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xA66))
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for round := 1; round <= cfg.Rounds; round++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, id := range order {
			peer, ok := src.PeerOf(id)
			if !ok || int(peer) >= n || peer == id {
				continue
			}
			mean := (est[id] + est[peer]) / 2
			est[id], est[peer] = mean, mean
		}
		res.VariancePerRound = append(res.VariancePerRound, stats.Variance(est))
		src.Step()
	}
	res.Estimates = est
	for _, e := range est {
		if d := abs(e - res.TrueMean); d > res.MaxError {
			res.MaxError = d
		}
	}
	return res, nil
}

// SizeEstimate interprets an estimate produced from a 1-at-one-node
// initialisation as a network size (1/value). It returns 0 for
// non-positive estimates.
func SizeEstimate(value float64) float64 {
	if value <= 0 {
		return 0
	}
	return 1 / value
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// UniformSource returns ideal uniform random partners.
type UniformSource struct {
	n   int
	rng *rand.Rand
}

var _ PeerSource = (*UniformSource)(nil)

// NewUniformSource builds a uniform source over n nodes.
func NewUniformSource(n int, seed uint64) *UniformSource {
	return &UniformSource{n: n, rng: rand.New(rand.NewPCG(seed, 0xA99))}
}

// PeerOf implements PeerSource.
func (u *UniformSource) PeerOf(id int32) (int32, bool) {
	if u.n < 2 {
		return 0, false
	}
	for {
		p := int32(u.rng.IntN(u.n))
		if p != id {
			return p, true
		}
	}
}

// Size implements PeerSource.
func (u *UniformSource) Size() int { return u.n }

// Step implements PeerSource (no-op).
func (u *UniformSource) Step() {}

// OverlaySource draws partners from the views of a peer sampling
// simulation; each aggregation round advances the overlay by one cycle.
type OverlaySource struct {
	net *sim.Network
}

var _ PeerSource = (*OverlaySource)(nil)

// NewOverlaySource adapts a simulation.
func NewOverlaySource(net *sim.Network) *OverlaySource { return &OverlaySource{net: net} }

// PeerOf implements PeerSource via the simulated getPeer().
func (o *OverlaySource) PeerOf(id int32) (int32, bool) {
	p, err := o.net.SamplePeer(id)
	if err != nil {
		return 0, false
	}
	return p, true
}

// Size implements PeerSource.
func (o *OverlaySource) Size() int { return o.net.Size() }

// Step implements PeerSource: one overlay gossip cycle.
func (o *OverlaySource) Step() { o.net.RunCycle() }
