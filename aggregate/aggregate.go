// Package aggregate implements gossip-based push-pull averaging on top of
// a peer sampling service — the aggregation application class the paper
// motivates (its references [16, 14, 13]: Kempe et al. and the
// Jelasity/Montresor line of proactive aggregation).
//
// Every node holds a numeric value; in each round every node draws one
// peer from the sampling service and the pair replaces both values with
// their mean. Under ideal uniform sampling the empirical variance decays
// exponentially (by roughly 1/(2*sqrt(e)) per round); running the same
// protocol over a gossip overlay measures how much the non-uniformity of
// real peer sampling costs.
//
// Setting one node's value to 1 and all others to 0 turns the aggregator
// into a network size estimator: every value converges to 1/N.
//
// The workload is an address-generic app.Engine: the same engine runs on
// the cycle simulator (Run), over a live runtime node's transport
// (app.Runner), and inside the daemon's workload plugin. On the wire one
// payload carries an op byte and a float64; the push-pull op exchanges
// estimates, the set op (re)initialises a node's value so experiments
// can seed a live fleet remotely.
package aggregate

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"peersampling/internal/app"
	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// Topic is the app-payload stream the aggregation engine listens on.
const Topic = "aggregate"

// UniformSalt is the RNG stream of the uniform peer source historically
// used by this workload; pass it to app.NewUniform to reproduce the
// package's fixed-seed results.
const UniformSalt = 0xA99

// Payload ops. A payload is one op byte followed by a big-endian float64.
const (
	opPushPull = 0 // exchange estimates: the reply carries the peer's pre-merge value
	opSet      = 1 // overwrite the estimate (experiment seeding); never replied
)

// payloadSize is the encoded length of every aggregate payload.
const payloadSize = 9

// EncodePushPull encodes the initiator half of a push-pull exchange.
func EncodePushPull(value float64) []byte { return encodePayload(opPushPull, value) }

// EncodeSet encodes a value overwrite, used by experiment drivers to
// (re)initialise live nodes remotely.
func EncodeSet(value float64) []byte { return encodePayload(opSet, value) }

func encodePayload(op byte, value float64) []byte {
	buf := make([]byte, payloadSize)
	buf[0] = op
	binary.BigEndian.PutUint64(buf[1:], math.Float64bits(value))
	return buf
}

func decodePayload(p []byte) (op byte, value float64, ok bool) {
	if len(p) != payloadSize {
		return 0, 0, false
	}
	return p[0], math.Float64frombits(binary.BigEndian.Uint64(p[1:])), true
}

// Engine is one node's view of a push-pull averaging run: it holds the
// local estimate and exchanges it with one drawn peer per round. It is
// safe for concurrent use — on a live node Tick and OnMessage run on
// different goroutines.
type Engine[A comparable] struct {
	mu       sync.Mutex
	est      float64
	rounds   uint64
	sent     uint64
	received uint64
	failures uint64
}

var _ app.Engine[sim.NodeID] = (*Engine[sim.NodeID])(nil)

// NewEngine returns an engine holding the given initial value.
func NewEngine[A comparable](initial float64) *Engine[A] {
	return &Engine[A]{est: initial}
}

// Topic implements app.Engine.
func (e *Engine[A]) Topic() string { return Topic }

// Value returns the current estimate.
func (e *Engine[A]) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.est
}

// SetValue overwrites the estimate (local experiment seeding; remote
// seeding uses EncodeSet payloads).
func (e *Engine[A]) SetValue(v float64) {
	e.mu.Lock()
	e.est = v
	e.mu.Unlock()
}

// Tick implements app.Engine: push-pull with one drawn peer. The
// exchange is performed without holding the engine lock — two live nodes
// initiating at each other simultaneously must not deadlock — so a
// concurrent passive merge can land mid-exchange; the reply is then
// folded in as a delta, which conserves the population's mass exactly.
func (e *Engine[A]) Tick(src app.PeerSource[A], ep app.Endpoint[A]) {
	e.mu.Lock()
	e.rounds++
	sent := e.est
	e.mu.Unlock()
	peer, ok := src.Draw()
	if !ok {
		return // empty view: wait for the overlay to bootstrap
	}
	if peer == ep.Self() {
		return
	}
	reply, replied, err := ep.Deliver(peer, EncodePushPull(sent), true)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err != nil {
		e.failures++
		return
	}
	e.sent++
	if !replied {
		return
	}
	op, v, ok := decodePayload(reply)
	if !ok || op != opPushPull {
		return
	}
	if e.est == sent {
		// No concurrent update landed: plain averaging, bit-identical to
		// the sequential simulator's (est+peer)/2.
		e.est = (sent + v) / 2
	} else {
		e.est += (v - sent) / 2
	}
}

// OnMessage implements app.Engine: the passive half of a push-pull
// exchange (reply with the pre-merge estimate), or a set op.
func (e *Engine[A]) OnMessage(from A, payload []byte) ([]byte, bool) {
	op, v, ok := decodePayload(payload)
	if !ok {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.received++
	switch op {
	case opSet:
		e.est = v
		return nil, false
	case opPushPull:
		old := e.est
		e.est = (old + v) / 2
		return EncodePushPull(old), true
	default:
		return nil, false
	}
}

// Snapshot implements app.Engine.
func (e *Engine[A]) Snapshot() app.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return app.Snapshot{
		Workload: Topic,
		Rounds:   e.rounds,
		Sent:     e.sent,
		Received: e.received,
		Failures: e.failures,
		Value:    e.est,
	}
}

// Config parameterises a simulated averaging run.
type Config struct {
	// Rounds is the number of gossip rounds to execute.
	Rounds int
	// Seed drives the per-round node ordering.
	Seed uint64
}

// Result reports one averaging run.
type Result struct {
	// TrueMean is the invariant mean of the initial values.
	TrueMean float64
	// VariancePerRound[r] is the empirical variance of node estimates
	// after round r (index 0 is the initial state).
	VariancePerRound []float64
	// Estimates holds the final per-node estimates.
	Estimates []float64
	// MaxError is the largest |estimate - TrueMean| at the end.
	MaxError float64
}

// ConvergenceRate returns the geometric mean per-round variance reduction
// factor over the run (smaller is faster); 1 means no convergence.
func (r Result) ConvergenceRate() float64 {
	v := r.VariancePerRound
	if len(v) < 2 || v[0] == 0 {
		return 1
	}
	last := v[len(v)-1]
	if last <= 0 {
		// Converged to exactly zero variance within the run; report the
		// strongest defensible bound from the last positive value.
		for i := len(v) - 1; i > 0; i-- {
			if v[i] > 0 {
				return math.Pow(v[i]/v[0], 1/float64(i))
			}
		}
		return 0
	}
	return math.Pow(last/v[0], 1/float64(len(v)-1))
}

// simEndpoint is the simulation backend of app.Endpoint: delivery is a
// synchronous call into the destination engine.
type simEndpoint struct {
	engines []*Engine[sim.NodeID]
	self    sim.NodeID
}

func (ep *simEndpoint) Self() sim.NodeID { return ep.self }

func (ep *simEndpoint) Deliver(peer sim.NodeID, payload []byte, wantReply bool) ([]byte, bool, error) {
	if peer < 0 || int(peer) >= len(ep.engines) {
		return nil, false, nil
	}
	reply, has := ep.engines[peer].OnMessage(ep.self, payload)
	return reply, has, nil
}

// Run executes push-pull averaging of the given initial values over the
// peer source on the simulator: one engine per node, synchronous
// delivery, per-round initiator order drawn exactly as the historical
// sequential implementation did (so fixed-seed results are unchanged).
// The values slice is not modified.
func Run(values []float64, cfg Config, src app.Source[sim.NodeID]) (Result, error) {
	n := src.Size()
	if len(values) != n {
		return Result{}, fmt.Errorf("aggregate: %d values for %d nodes", len(values), n)
	}
	if cfg.Rounds <= 0 {
		return Result{}, fmt.Errorf("aggregate: rounds must be positive, got %d", cfg.Rounds)
	}
	engines := make([]*Engine[sim.NodeID], n)
	for i := range engines {
		engines[i] = NewEngine[sim.NodeID](values[i])
	}
	res := Result{
		TrueMean:         stats.Mean(values),
		VariancePerRound: []float64{stats.Variance(values)},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xA66))
	order := make([]sim.NodeID, n)
	for i := range order {
		order[i] = sim.NodeID(i)
	}
	ep := &simEndpoint{engines: engines}
	est := make([]float64, n)
	for round := 1; round <= cfg.Rounds; round++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, id := range order {
			ep.self = id
			engines[id].Tick(src.For(id), ep)
		}
		for i, e := range engines {
			est[i] = e.Value()
		}
		res.VariancePerRound = append(res.VariancePerRound, stats.Variance(est))
		src.Step()
	}
	res.Estimates = est
	for _, e := range est {
		if d := abs(e - res.TrueMean); d > res.MaxError {
			res.MaxError = d
		}
	}
	return res, nil
}

// SizeEstimate interprets an estimate produced from a 1-at-one-node
// initialisation as a network size (1/value). It returns 0 for
// non-positive estimates.
func SizeEstimate(value float64) float64 {
	if value <= 0 {
		return 0
	}
	return 1 / value
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
