// Micro-benchmarks for the building blocks: view algebra, protocol
// exchanges, simulation cycles, graph metrics, removal sweeps and the
// wire codec. These quantify the cost model behind the experiment
// harness (e.g. one cycle at paper scale, one BFS, one snapshot).
package peersampling_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"peersampling/internal/core"
	"peersampling/internal/graph"
	"peersampling/internal/scenario"
	"peersampling/internal/sim"
	"peersampling/internal/transport"
)

func benchView(c int, rng *rand.Rand) []core.Descriptor[int32] {
	out := make([]core.Descriptor[int32], c)
	for i := range out {
		out[i] = core.Descriptor[int32]{Addr: int32(rng.IntN(1 << 20)), Hop: int32(i)}
	}
	return out
}

func BenchmarkViewMerge(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := benchView(31, rng)
	y := benchView(31, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Merge(x, y)
	}
}

func BenchmarkExchangePushPull(b *testing.B) {
	mk := func(id int32) *core.Node[int32] {
		n, err := core.NewNode(id, core.Newscast, 30, rand.New(rand.NewPCG(uint64(id), 1)))
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(9, 9))
		n.Bootstrap(benchView(30, rng))
		return n
	}
	x, y := mk(1<<21), mk(1<<21+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AgeView()
		_, req, err := x.InitiateExchange()
		if err != nil {
			b.Fatal(err)
		}
		resp, ok := y.HandleRequest(req)
		if ok {
			x.HandleResponse(resp)
		}
	}
}

func benchNetwork(b *testing.B, n int) *sim.Network {
	b.Helper()
	w := scenario.BuildRandom(sim.Config{Protocol: core.Newscast, ViewSize: 30, Seed: 2}, n)
	w.Run(10) // leave the artificial bootstrap state
	return w
}

func BenchmarkSimCycle(b *testing.B) {
	for _, n := range []int{1000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := benchNetwork(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RunCycle()
			}
		})
	}
}

// BenchmarkShardedCycle measures the staged parallel cycle driver at a
// size where per-cycle overheads have vanished; the worker subbenches
// expose its scaling (bounded by the machine — the results are honest
// numbers for the hardware they ran on, not an architecture claim).
func BenchmarkShardedCycle(b *testing.B) {
	w := benchNetwork(b, 100_000)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RunCycleSharded(workers)
			}
		})
	}
}

// millionNetwork builds the 10^6-node population once per process and
// shares it across the million-scale benchmarks; rebuilding it per
// benchmark would dwarf the measurements.
var millionNetwork *sim.Network

func benchMillionNetwork(b *testing.B) *sim.Network {
	b.Helper()
	if millionNetwork == nil {
		millionNetwork = scenario.BuildRandom(
			sim.Config{Protocol: core.Newscast, ViewSize: 30, Seed: 2}, 1_000_000)
		millionNetwork.RunSharded(2, 0) // leave the artificial bootstrap state
	}
	return millionNetwork
}

// BenchmarkMillionCycleSeq runs one sequential cycle over 10^6 nodes —
// the paper's scale, far beyond what its authors could simulate in 2004.
// Run with -benchtime=1x: a single cycle is seconds, and the population
// state advances across iterations.
func BenchmarkMillionCycleSeq(b *testing.B) {
	w := benchMillionNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunCycle()
	}
}

// BenchmarkMillionCycleSharded is the same population driven by the
// staged engine at GOMAXPROCS workers.
func BenchmarkMillionCycleSharded(b *testing.B) {
	w := benchMillionNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunCycleSharded(0)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	w := benchNetwork(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.TakeSnapshot()
	}
}

func BenchmarkObserveSampled(b *testing.B) {
	w := benchNetwork(b, 10_000)
	mc := sim.MetricsConfig{PathSources: 24, ClusteringSample: 600, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Observe(mc)
	}
}

func BenchmarkGraphBFS(b *testing.B) {
	g := graph.RandomViewGraph(10_000, 30, rand.New(rand.NewPCG(4, 4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(int32(i % g.NumNodes()))
	}
}

func BenchmarkGraphClusteringSampled(b *testing.B) {
	g := graph.RandomViewGraph(10_000, 30, rand.New(rand.NewPCG(5, 5)))
	rng := rand.New(rand.NewPCG(6, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.EstimateClustering(600, rng)
	}
}

func BenchmarkRemovalSweep(b *testing.B) {
	g := graph.RandomViewGraph(10_000, 30, rand.New(rand.NewPCG(7, 7)))
	checkpoints := make([]int, 0, 7)
	for p := 65; p <= 95; p += 5 {
		checkpoints = append(checkpoints, g.NumNodes()*p/100)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graph.RemovalSweep(g, checkpoints, rng)
	}
}

// BenchmarkCodecRoundTrip measures the pooled codec path every transport
// hot loop uses: encode into a reused buffer, decode through a Decoder
// that reuses descriptor scratch and interns addresses. At steady state
// the round trip is allocation-free.
func BenchmarkCodecRoundTrip(b *testing.B) {
	buf := make([]core.Descriptor[string], 31)
	for i := range buf {
		buf[i] = core.Descriptor[string]{Addr: fmt.Sprintf("10.0.%d.%d:7946", i, i), Hop: int32(i)}
	}
	req := transport.Request{From: "10.0.0.1:7946", WantReply: true, Buffer: buf}
	var dec transport.Decoder
	var encBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := transport.AppendRequest(encBuf[:0], req)
		if err != nil {
			b.Fatal(err)
		}
		encBuf = frame
		if _, _, _, err := dec.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundTripAlloc is the allocating convenience path
// (EncodeRequest + DecodeMessage); the delta against
// BenchmarkCodecRoundTrip is what buffer reuse and interning save.
func BenchmarkCodecRoundTripAlloc(b *testing.B) {
	buf := make([]core.Descriptor[string], 31)
	for i := range buf {
		buf[i] = core.Descriptor[string]{Addr: fmt.Sprintf("10.0.%d.%d:7946", i, i), Hop: int32(i)}
	}
	req := transport.Request{From: "10.0.0.1:7946", WantReply: true, Buffer: buf}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := transport.EncodeRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := transport.DecodeMessage(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEchoHandler echoes pull requests, standing in for the passive
// protocol thread in transport benchmarks.
func benchEchoHandler(req transport.Request) (transport.Response, bool) {
	return transport.Response{From: "server", Buffer: req.Buffer}, req.WantReply
}

// benchWireRequest is a realistic pushpull request: a full 30-descriptor
// view plus the sender's own descriptor.
func benchWireRequest(from string) transport.Request {
	buf := make([]transport.Descriptor, 31)
	for i := range buf {
		buf[i] = transport.Descriptor{Addr: fmt.Sprintf("10.0.%d.%d:7946", i, i), Hop: int32(i)}
	}
	return transport.Request{From: from, WantReply: true, Buffer: buf}
}

// BenchmarkTCPExchangeDial measures a full pushpull exchange over the
// dial-per-exchange TCP baseline on loopback.
func BenchmarkTCPExchangeDial(b *testing.B) {
	server, err := transport.ListenTCP("127.0.0.1:0", benchEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := transport.ListenTCP("127.0.0.1:0", benchEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	req := benchWireRequest(client.Addr())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := client.Exchange(ctx, server.Addr(), req); err != nil || !ok {
			b.Fatalf("exchange: %v ok=%v", err, ok)
		}
	}
}

// BenchmarkTCPExchangeDialHardened is BenchmarkTCPExchangeDial with an
// explicit (tight) connection cap on the server, so every accept passes
// through the hardening gate; the delta against the unhardened dial
// benchmark is the accept-path overhead of the Limits layer.
func BenchmarkTCPExchangeDialHardened(b *testing.B) {
	server, err := transport.ListenTCPLimits("127.0.0.1:0", benchEchoHandler,
		transport.Limits{MaxConns: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := transport.ListenTCP("127.0.0.1:0", benchEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	req := benchWireRequest(client.Addr())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := client.Exchange(ctx, server.Addr(), req); err != nil || !ok {
			b.Fatalf("exchange: %v ok=%v", err, ok)
		}
	}
	b.StopTimer()
	stats := server.TransportStats()
	b.ReportMetric(float64(stats.AcceptRejects), "rejects")
}

// BenchmarkTCPExchangePooled measures the same exchange over pooled
// persistent connections; the delta against BenchmarkTCPExchangeDial is
// the per-exchange dial cost the pool amortises away.
func BenchmarkTCPExchangePooled(b *testing.B) {
	server, err := transport.ListenPooledTCP("127.0.0.1:0", benchEchoHandler, transport.PoolConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := transport.ListenPooledTCP("127.0.0.1:0", benchEchoHandler, transport.PoolConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	req := benchWireRequest(client.Addr())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := client.Exchange(ctx, server.Addr(), req); err != nil || !ok {
			b.Fatalf("exchange: %v ok=%v", err, ok)
		}
	}
	b.StopTimer()
	stats := client.TransportStats()
	b.ReportMetric(float64(stats.Dials), "dials")
}

// BenchmarkUDPExchange measures the same exchange as one datagram pair.
func BenchmarkUDPExchange(b *testing.B) {
	server, err := transport.ListenUDP("127.0.0.1:0", benchEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := transport.ListenUDP("127.0.0.1:0", benchEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	req := benchWireRequest(client.Addr())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := client.Exchange(ctx, server.Addr(), req); err != nil || !ok {
			b.Fatalf("exchange: %v ok=%v", err, ok)
		}
	}
}

func BenchmarkFabricExchange(b *testing.B) {
	f := transport.NewFabric()
	handler := func(req transport.Request) (transport.Response, bool) {
		return transport.Response{From: "b", Buffer: req.Buffer}, req.WantReply
	}
	a, err := f.Endpoint("a", handler)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Endpoint("b", handler); err != nil {
		b.Fatal(err)
	}
	req := transport.Request{From: "a", WantReply: true,
		Buffer: []transport.Descriptor{{Addr: "x", Hop: 1}}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.Exchange(ctx, "b", req); err != nil {
			b.Fatal(err)
		}
	}
}
