// Command psim runs one peer sampling protocol on one bootstrap scenario
// and streams per-cycle overlay metrics as CSV — the raw material for
// regenerating any line of the paper's figures with a plotting tool.
//
// Usage:
//
//	psim -protocol "(rand,head,pushpull)" -scenario random -n 10000 -c 30 -cycles 300
//
// Scenarios: random, lattice, growing. Failure injection: -kill 0.5
// fails half the nodes at cycle -killat, after which dead links are
// tracked (the paper's Figure 7 setup).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"peersampling/internal/core"
	"peersampling/internal/scenario"
	"peersampling/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psim: ")

	var (
		protoFlag = flag.String("protocol", "(rand,head,pushpull)", "protocol tuple, e.g. (tail,rand,push)")
		scen      = flag.String("scenario", "random", "bootstrap scenario: random, lattice, growing")
		n         = flag.Int("n", 10_000, "network size")
		c         = flag.Int("c", 30, "view size")
		cycles    = flag.Int("cycles", 300, "cycles to run")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		every     = flag.Int("every", 1, "measure every k cycles")
		growth    = flag.Int("growth", 100, "nodes joining per cycle (growing scenario)")
		kill      = flag.Float64("kill", 0, "fraction of nodes to fail at -killat")
		killAt    = flag.Int("killat", 0, "cycle at which the failure strikes")
		pathSrc   = flag.Int("pathsources", 24, "BFS sources for path length estimation (0 = exact)")
		clustSmpl = flag.Int("clustsample", 600, "sampled nodes for clustering (0 = exact)")
	)
	flag.Parse()

	proto, err := core.ParseProtocol(*protoFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *kill < 0 || *kill >= 1 {
		if *kill != 0 {
			log.Fatalf("kill fraction %v out of [0,1)", *kill)
		}
	}
	cfg := sim.Config{Protocol: proto, ViewSize: *c, Seed: *seed}
	mc := sim.MetricsConfig{PathSources: *pathSrc, ClusteringSample: *clustSmpl, Seed: *seed}

	var w *sim.Network
	growing := false
	switch *scen {
	case "random":
		w = scenario.BuildRandom(cfg, *n)
	case "lattice":
		w = scenario.BuildLattice(cfg, *n)
	case "growing":
		w = scenario.BuildGrowingSeed(cfg)
		growing = true
	default:
		log.Fatalf("unknown scenario %q (want random, lattice or growing)", *scen)
	}

	fmt.Println("cycle,live,edges,avgdeg,mindeg,maxdeg,clustering,pathlen,components,largest,deadlinks")
	emit := func(o sim.Observation) {
		fmt.Printf("%d,%d,%d,%.4f,%d,%d,%.6f,%.4f,%d,%d,%d\n",
			o.Cycle, o.LiveNodes, o.Edges, o.AvgDegree, o.MinDegree, o.MaxDegree,
			o.Clustering, o.PathLen, o.Components, o.Largest, o.DeadLinks)
	}
	emit(w.Observe(mc))
	for cyc := 1; cyc <= *cycles; cyc++ {
		if growing {
			scenario.GrowStep(w, *growth, *n)
		}
		if *kill > 0 && cyc == *killAt {
			killed := w.KillFraction(*kill)
			fmt.Fprintf(os.Stderr, "killed %d nodes at cycle %d\n", len(killed), cyc)
		}
		w.RunCycle()
		if cyc%*every == 0 || cyc == *cycles {
			emit(w.Observe(mc))
		}
	}
}
