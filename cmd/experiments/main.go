// Command experiments reproduces every table and figure of the paper's
// evaluation section and prints paper-shaped text tables.
//
// Usage:
//
//	experiments -scale quick                  # all experiments, seconds
//	experiments -scale full -run table1,figure7
//
// Scales: quick (N=500), medium (N=2500), full (the paper's N=10^4,
// c=30, 300 cycles, 100 repetitions). Experiment IDs: table1, figure2,
// figure3, figure4, table2, figure5, figure6, figure7, exclusion,
// uniformity, churn, ablation, plus the live-socket extension "hostile"
// (connection flood + slowloris against a real cluster — the one
// experiment whose numbers are timing-dependent rather than seeded).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"peersampling/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scaleName = flag.String("scale", "quick", "quick, medium or full")
		runList   = flag.String("run", "all", "comma-separated experiment IDs, or all")
		seed      = flag.Uint64("seed", 1, "master seed")
		csvDir    = flag.String("csv", "", "directory for raw CSV series (figures only)")
	)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	sc, err := scenario.ScaleByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}

	var defs []scenario.Def
	if *runList == "all" {
		defs = scenario.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			def, ok := scenario.Find(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment %q", id)
			}
			defs = append(defs, def)
		}
	}

	fmt.Printf("reproduction scale %q: N=%d, c=%d, %d cycles, %d repetitions\n\n",
		sc.Name, sc.N, sc.ViewSize, sc.Cycles, sc.Reps)
	for _, def := range defs {
		start := time.Now()
		result := def.Run(sc, *seed)
		fmt.Printf("=== %s — %s (%.1fs)\n\n", def.ID, def.Title, time.Since(start).Seconds())
		fmt.Println(result.Render())
		if *csvDir == "" {
			continue
		}
		if csver, ok := result.(scenario.CSVer); ok {
			for stem, content := range csver.CSV() {
				path := filepath.Join(*csvDir, stem+".csv")
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
}
