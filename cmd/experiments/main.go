// Command experiments reproduces every table and figure of the paper's
// evaluation section and prints paper-shaped text tables.
//
// Usage:
//
//	experiments -scale quick                  # all experiments, seconds
//	experiments -scale full -run table1,figure7
//	experiments -run hostile -metrics-addr 127.0.0.1:9090 -metrics-csv run.csv
//
// Scales: quick (N=500), medium (N=2500), full (the paper's N=10^4,
// c=30, 300 cycles, 100 repetitions). Experiment IDs: table1, figure2,
// figure3, figure4, table2, figure5, figure6, figure7, exclusion,
// uniformity, churn, ablation, plus the live-socket extensions
// "bootstrap" (single-contact cluster convergence) and "hostile"
// (connection flood + slowloris against a real cluster) — the two
// experiments whose numbers are timing-dependent rather than seeded.
//
// The live experiments can be observed while they run: -metrics-addr
// serves every cluster node's counters and view gauges on a Prometheus
// /metrics endpoint for the duration of the process, and -metrics-csv
// appends periodic long-form snapshots (node,cycle,metric,value — the
// same schema the figure CSVs use) so a live run yields a time series
// like any simulated one. Both flags only affect experiments that boot
// live clusters; cycle-based experiments emit their series via -csv.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"peersampling/internal/metrics"
	"peersampling/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run owns the process lifecycle. Errors return instead of calling
// log.Fatal so the deferred teardown — metrics server, final dump round,
// dump file close — runs on the failure paths too.
func run() error {
	var (
		scaleName = flag.String("scale", "quick", "quick, medium or full")
		runList   = flag.String("run", "all", "comma-separated experiment IDs, or all")
		seed      = flag.Uint64("seed", 1, "master seed")
		csvDir    = flag.String("csv", "", "directory for raw CSV series (figures only)")

		metricsAddr = flag.String("metrics-addr", "",
			"serve live-experiment node metrics on http://<addr>/metrics while the process runs")
		metricsCSV = flag.String("metrics-csv", "",
			"append periodic live-experiment snapshots to this file (long-form CSV; .jsonl selects JSONL)")
		metricsEvery = flag.Duration("metrics-interval", 250*time.Millisecond,
			"snapshot interval for -metrics-csv")
	)
	flag.Parse()

	if *metricsEvery <= 0 {
		return fmt.Errorf("-metrics-interval must be positive, got %v", *metricsEvery)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// A collector is attached to the live-cluster experiments (bootstrap,
	// hostile) when either metrics flag asks for one; registered nodes
	// stay observable after their experiment ends, so one endpoint serves
	// a whole multi-experiment run.
	var coll *metrics.Collector
	if *metricsAddr != "" || *metricsCSV != "" {
		coll = metrics.New()
	}
	if *metricsAddr != "" {
		srv, err := metrics.NewServer(coll, *metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving live-experiment metrics on http://%s/metrics\n\n", srv.Addr())
	}
	if *metricsCSV != "" {
		dumper, err := metrics.NewFileDumper(coll, *metricsCSV)
		if err != nil {
			return err
		}
		defer dumper.Close()
		dumper.Start(*metricsEvery)
		defer func() {
			if err := dumper.Stop(); err != nil {
				log.Printf("metrics: final dump: %v", err)
			}
		}()
	}

	sc, err := scenario.ScaleByName(*scaleName)
	if err != nil {
		return err
	}

	var defs []scenario.Def
	if *runList == "all" {
		defs = scenario.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			def, ok := scenario.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			defs = append(defs, def)
		}
	}

	fmt.Printf("reproduction scale %q: N=%d, c=%d, %d cycles, %d repetitions\n\n",
		sc.Name, sc.N, sc.ViewSize, sc.Cycles, sc.Reps)
	for _, def := range defs {
		start := time.Now()
		var result scenario.Result
		if coll != nil && def.RunLive != nil {
			result = def.RunLive(sc, *seed, coll)
		} else {
			result = def.Run(sc, *seed)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n\n", def.ID, def.Title, time.Since(start).Seconds())
		fmt.Println(result.Render())
		if *csvDir == "" {
			continue
		}
		if csver, ok := result.(scenario.CSVer); ok {
			for stem, content := range csver.CSV() {
				path := filepath.Join(*csvDir, stem+".csv")
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	return nil
}
