// Command experiments reproduces every table and figure of the paper's
// evaluation section and prints paper-shaped text tables.
//
// Usage:
//
//	experiments -scale quick                  # all experiments, seconds
//	experiments -scale full -run table1,figure7
//	experiments -run hostile -metrics-addr 127.0.0.1:9090 -metrics-csv run.csv
//	experiments -run bootstrap,livechurn -driver subprocess -psnode ./psnode
//
// Scales: quick (N=500), medium (N=2500), full (the paper's N=10^4,
// c=30, 300 cycles, 100 repetitions). Experiment IDs: table1, figure2,
// figure3, figure4, table2, figure5, figure6, figure7, exclusion,
// uniformity, churn, ablation, plus the live extensions "bootstrap"
// (single-contact cluster convergence), "hostile" (connection flood +
// slowloris against a real cluster), "livechurn" (kill and respawn
// waves against the fleet), "livebroadcast" (epidemic rumor spread over
// the fleet's workload engines under a kill wave), "liveaggregate"
// (push-pull averaging variance decay and network size estimation),
// "livegateway" (every member's sampling gateway under ramping
// load-generator pressure through a kill wave) and "partitionheal"
// (partition a live fleet from a declarative fault plan, then watch it
// re-converge once the rules expire) — the experiments whose
// numbers are timing-dependent rather than seeded. The live
// experiments' fault logic (kill waves, floods, partitions, per-link
// latency/loss) replays from named chaos plans embedded in
// internal/chaos/plans. -list prints the full registry with each
// experiment's kind.
//
// The live experiments run on a fleet driver selected with -driver:
// "inproc" (default) keeps every node a goroutine in this process;
// "subprocess" forks one real psnode process per node (binary from
// -psnode, $PSNODE_BIN, or psnode on $PATH) and drives the fleet through
// each daemon's control agent, so churn and hostility cross real process
// boundaries.
//
// The live experiments can be observed while they run: -metrics-addr
// serves every cluster node's counters, exchange-latency histogram and
// view gauges on a Prometheus /metrics endpoint for the duration of the
// process (subprocess members are scraped through their agents and show
// up as stale sources once killed), and -metrics-csv appends periodic
// long-form snapshots (node,cycle,metric,value — the same schema the
// figure CSVs use) so a live run yields a time series like any simulated
// one. These flags only affect experiments that boot live clusters;
// cycle-based experiments emit their series via -csv.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
	"peersampling/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run owns the process lifecycle. Errors return instead of calling
// log.Fatal so the deferred teardown — metrics server, final dump round,
// dump file close — runs on the failure paths too.
func run() error {
	var (
		list      = flag.Bool("list", false, "print every experiment ID with its kind and description, then exit")
		scaleName = flag.String("scale", "quick", "quick, medium or full")
		runList   = flag.String("run", "all", "comma-separated experiment IDs, or all")
		seed      = flag.Uint64("seed", 1, "master seed")
		csvDir    = flag.String("csv", "", "directory for raw CSV series (figures only)")

		metricsAddr = flag.String("metrics-addr", "",
			"serve live-experiment node metrics on http://<addr>/metrics while the process runs")
		metricsCSV = flag.String("metrics-csv", "",
			"append periodic live-experiment snapshots to this file (long-form CSV; .jsonl selects JSONL)")
		metricsEvery = flag.Duration("metrics-interval", 250*time.Millisecond,
			"snapshot interval for -metrics-csv")

		driver = flag.String("driver", fleet.DriverInproc,
			fmt.Sprintf("fleet driver for live experiments, one of %v", fleet.Drivers()))
		psnodeBin = flag.String("psnode", "",
			"psnode binary for -driver=subprocess (default: $PSNODE_BIN, then psnode on $PATH)")
	)
	flag.Parse()

	if *list {
		listExperiments()
		return nil
	}
	if *metricsEvery <= 0 {
		return fmt.Errorf("-metrics-interval must be positive, got %v", *metricsEvery)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// A collector is attached to the live-cluster experiments (bootstrap,
	// hostile) when either metrics flag asks for one; registered nodes
	// stay observable after their experiment ends, so one endpoint serves
	// a whole multi-experiment run.
	var coll *metrics.Collector
	if *metricsAddr != "" || *metricsCSV != "" {
		coll = metrics.New()
	}
	if *metricsAddr != "" {
		srv, err := metrics.NewServer(coll, *metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving live-experiment metrics on http://%s/metrics\n\n", srv.Addr())
	}
	if *metricsCSV != "" {
		dumper, err := metrics.NewFileDumper(coll, *metricsCSV)
		if err != nil {
			return err
		}
		defer dumper.Close()
		dumper.Start(*metricsEvery)
		defer func() {
			if err := dumper.Stop(); err != nil {
				log.Printf("metrics: final dump: %v", err)
			}
		}()
	}

	env := scenario.LiveEnv{Collector: coll, Driver: *driver, Psnode: *psnodeBin}
	if *driver == fleet.DriverSubprocess && env.Psnode == "" {
		if fromEnv := os.Getenv("PSNODE_BIN"); fromEnv != "" {
			env.Psnode = fromEnv
		} else if onPath, err := exec.LookPath("psnode"); err == nil {
			env.Psnode = onPath
		} else {
			return fmt.Errorf("-driver=subprocess needs a psnode binary: pass -psnode, set $PSNODE_BIN, or put psnode on $PATH (go build ./cmd/psnode)")
		}
	}

	sc, err := scenario.ScaleByName(*scaleName)
	if err != nil {
		return err
	}

	var defs []scenario.Def
	if *runList == "all" {
		defs = scenario.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			def, ok := scenario.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			defs = append(defs, def)
		}
	}

	fmt.Printf("reproduction scale %q: N=%d, c=%d, %d cycles, %d repetitions\n\n",
		sc.Name, sc.N, sc.ViewSize, sc.Cycles, sc.Reps)
	for _, def := range defs {
		start := time.Now()
		var result scenario.Result
		if def.RunLive != nil {
			// Live experiments go through the environment-aware entry
			// point; an error (say, the psnode fleet failing to spawn)
			// returns through run so the deferred collector/dumper
			// teardown still happens, instead of dying in a panic.
			var err error
			result, err = def.RunLive(sc, *seed, env)
			if err != nil {
				return fmt.Errorf("%s: %w", def.ID, err)
			}
		} else {
			result = def.Run(sc, *seed)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n\n", def.ID, def.Title, time.Since(start).Seconds())
		fmt.Println(result.Render())
		if *csvDir == "" {
			continue
		}
		if csver, ok := result.(scenario.CSVer); ok {
			for stem, content := range csver.CSV() {
				path := filepath.Join(*csvDir, stem+".csv")
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	return nil
}

// listExperiments prints the registry: ID, kind and title per line. The
// kind says what runs underneath — "sim" for seeded cycle simulations,
// "live" for experiments that only boot real clusters, "both" for live
// experiments that also register a plain Run form (every current live
// experiment does, via its default-environment adapter).
func listExperiments() {
	for _, def := range scenario.All() {
		kind := "sim"
		switch {
		case def.Run != nil && def.RunLive != nil:
			kind = "both"
		case def.RunLive != nil:
			kind = "live"
		}
		fmt.Printf("%-14s %-5s %s\n", def.ID, kind, def.Title)
	}
}
