// Command psnode runs a real peer sampling node: the deployable daemon
// form of the service. The daemon is configured from a YAML or JSON
// file (-config), from flags, or from both — flags the user actually
// types override the file, untouched flags keep the file's values.
// Peers find each other through the configured bootstrap contacts and
// keep gossiping membership from then on.
//
// Usage:
//
//	psnode -config psnode.yaml
//	psnode -listen 127.0.0.1:7946 -metrics-addr 127.0.0.1:9090
//	psnode -config psnode.yaml -c 50 -transport udp
//
// Everything around the node — the Prometheus metrics server, the
// periodic CSV/JSONL dumper, the report logger, the fleet control agent
// and the light-client sampling gateway — runs as a daemon plugin (see
// internal/daemon); each comes up only when its address or path is
// configured, and all report into the aggregated /healthz served on the
// control and gateway ports.
//
// A daemon started with -config reloads it on SIGHUP: hot fields
// (transport limits, report interval, gateway tuning, added contacts)
// are applied to the running process, restart-required fields are
// logged and kept at their running values. Stop with SIGINT/SIGTERM or
// the control agent's POST /stop.
package main

import (
	"flag"
	"fmt"
	"log"

	"peersampling"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("psnode: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is a thin shell over internal/config + internal/daemon: resolve
// the effective config (file, then explicitly-set flag overrides), hand
// it to a daemon manager, and let Run own signals and reload.
func run() error {
	fs := flag.CommandLine
	cfgPath := fs.String("config", "", "load configuration from this YAML or JSON file; flags you set override it")
	flags := peersampling.ConfigFromFlags(fs)
	flag.Parse()
	if args := fs.Args(); len(args) > 0 {
		return fmt.Errorf("unexpected arguments: %v", args)
	}

	load := func() (peersampling.Config, error) {
		cfg := peersampling.DefaultConfig()
		if *cfgPath != "" {
			var err error
			if cfg, err = peersampling.LoadConfig(*cfgPath); err != nil {
				return cfg, err
			}
		}
		// The same overlay applies on SIGHUP reloads: a flag typed at boot
		// keeps winning over the re-read file, like an env override would.
		flags.Apply(&cfg)
		return cfg, cfg.Validate()
	}

	cfg, err := load()
	if err != nil {
		return err
	}
	m, err := peersampling.NewDaemon(cfg, peersampling.DaemonOptions{Logf: log.Printf})
	if err != nil {
		return err
	}
	if *cfgPath == "" {
		// Without a file there is nothing to re-read; Run logs and ignores
		// SIGHUP instead of reloading.
		return m.Run(nil)
	}
	return m.Run(load)
}
