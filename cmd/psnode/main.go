// Command psnode runs a real peer sampling node: the deployable daemon
// form of the service. Peers find each other through the -contacts
// bootstrap list and keep gossiping membership from then on. The wire
// backend is selected with -transport: "tcp-pooled" (persistent
// connections, the default), "tcp" (dial per exchange) or "udp" (one
// datagram per message).
//
// Usage:
//
//	psnode -listen 127.0.0.1:7946 -metrics-addr 127.0.0.1:9090
//	psnode -listen 127.0.0.1:7947 -contacts 127.0.0.1:7946 -transport udp
//
// The listener is hardened against hostile networks: -max-conns caps the
// connections served concurrently (excess accepts are closed and counted)
// and -keepalive sets the read budget a served connection earns after its
// first pull; peers that only ever push get 3/4 of it, and a connection
// that never sends its opening frame is dropped at the slowloris window.
// Zero values select the library defaults (1024 conns, 2m keep-alive).
//
// The daemon is continuously observable: -metrics-addr serves Prometheus
// text-format metrics on GET /metrics (protocol counters, every wire
// counter, the exchange-latency histogram, view-shape gauges), and
// -metrics-csv appends the same snapshots every -report interval as
// long-form CSV (node,cycle,metric,value — the schema the experiment
// renderers emit; a .jsonl extension selects JSONL instead). The periodic
// report log is driven by the same collector. Stop with SIGINT/SIGTERM.
//
// The daemon is also remotely drivable: -control-addr serves the fleet
// agent (GET /healthz, /snapshot, /view; POST /stop — see
// internal/fleet's package doc for the contract), which is how the
// subprocess cluster driver herds psnode fleets, and -ready-file makes
// the daemon atomically write its bound addresses as JSON once it is up,
// so a parent process discovers ephemeral ports without parsing logs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"peersampling"
	"peersampling/internal/fleet"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("psnode: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run owns the whole daemon lifecycle. Errors return instead of calling
// log.Fatal so every deferred shutdown (node close, metrics server, dump
// file) runs on the failure paths too — log.Fatal after the node existed
// used to leak the listener and pooled connections.
func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "listen address")
		backend = flag.String("transport", "tcp-pooled",
			fmt.Sprintf("wire backend, one of %v; tcp and tcp-pooled interoperate, udp nodes only reach udp nodes", peersampling.TransportBackends()))
		contacts  = flag.String("contacts", "", "comma-separated bootstrap addresses")
		protoFlag = flag.String("protocol", "(rand,head,pushpull)", "protocol tuple")
		viewSize  = flag.Int("c", 30, "view size")
		period    = flag.Duration("period", time.Second, "gossip period T")
		report    = flag.Duration("report", 5*time.Second, "view report and CSV dump interval")
		diverse   = flag.Bool("diverse", false, "diversity-maximising getPeer")
		maxConns  = flag.Int("max-conns", 0,
			"max connections served concurrently (0 = default 1024, negative = unlimited)")
		keepalive = flag.Duration("keepalive", 0,
			"keep-alive budget for served connections that pull (0 = default 2m; push-only peers get 3/4 of it)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve Prometheus text-format metrics on http://<addr>/metrics (empty = disabled)")
		metricsCSV = flag.String("metrics-csv", "",
			"append periodic metric snapshots to this file; .jsonl selects JSONL, anything else long-form CSV (empty = disabled)")
		controlAddr = flag.String("control-addr", "",
			"serve the fleet control agent on this address: GET /healthz, /snapshot, /view; POST /stop (empty = disabled)")
		readyFile = flag.String("ready-file", "",
			"atomically write the daemon's bound addresses as JSON to this path once up (empty = disabled)")
	)
	flag.Parse()

	if *report <= 0 {
		return fmt.Errorf("-report must be positive, got %v", *report)
	}
	proto, err := peersampling.ParseProtocol(*protoFlag)
	if err != nil {
		return err
	}
	factory, err := peersampling.NewTransportFactoryLimits(*backend, *listen, peersampling.TransportLimits{
		MaxConns:  *maxConns,
		KeepAlive: *keepalive,
	})
	if err != nil {
		return err
	}
	node, err := peersampling.NewNode(peersampling.NodeConfig{
		Protocol: proto,
		ViewSize: *viewSize,
		Period:   *period,
		Diverse:  *diverse,
		OnError:  func(err error) { log.Printf("exchange failed: %v", err) },
	}, factory)
	if err != nil {
		return err
	}
	defer node.Close()

	coll := peersampling.NewCollector()
	coll.Register("", node) // registered under the node's own address
	if *metricsAddr != "" {
		srv, err := peersampling.NewMetricsServer(coll, *metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("metrics: serving http://%s/metrics", srv.Addr())
	}
	if *metricsCSV != "" {
		dumper, err := peersampling.NewMetricsFileDumper(coll, *metricsCSV)
		if err != nil {
			return err
		}
		defer dumper.Close()
		dumper.Start(*report)
		defer func() {
			if err := dumper.Stop(); err != nil {
				log.Printf("metrics: final dump: %v", err)
			}
		}()
		log.Printf("metrics: dumping to %s every %v", *metricsCSV, *report)
	}

	// stopRequests unifies the two ways the daemon is told to exit: POSIX
	// signals and the control agent's POST /stop.
	stopRequests := make(chan struct{})
	var stopOnce sync.Once
	requestStop := func() { stopOnce.Do(func() { close(stopRequests) }) }

	info := fleet.AgentInfo{
		PID:             os.Getpid(),
		Addr:            node.Addr(),
		StartUnixMillis: time.Now().UnixMilli(),
	}
	if *controlAddr != "" {
		agent, err := fleet.NewAgent(*controlAddr, node, requestStop)
		if err != nil {
			return err
		}
		defer agent.Close()
		info = agent.Info()
		log.Printf("control agent on http://%s (healthz, snapshot, view, stop)", agent.Addr())
	}

	if *contacts != "" {
		if err := node.Init(strings.Split(*contacts, ",")); err != nil {
			return err
		}
	}
	if err := node.Start(); err != nil {
		return err
	}
	log.Printf("listening on %s (%s), protocol %s, c=%d, period %v", node.Addr(), *backend, proto, *viewSize, *period)

	// The ready file is written last: its existence promises every
	// listener above is bound and gossip is running.
	if *readyFile != "" {
		if err := fleet.WriteReady(*readyFile, info); err != nil {
			return err
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			log.Print("shutting down")
			return nil
		case <-stopRequests:
			log.Print("shutting down (control agent stop)")
			return nil
		case <-ticker.C:
			view := node.View()
			entries := make([]string, len(view))
			for i, d := range view {
				entries[i] = fmt.Sprintf("%s@%d", d.Addr, d.Hop)
			}
			log.Printf("view(%d): %s", len(view), strings.Join(entries, " "))
			// The report lines are the same snapshots the /metrics
			// endpoint and the CSV dump serve.
			for _, s := range coll.Snapshot() {
				log.Printf("stats: cycles=%d exchanges=%d failures=%d served=%d view=%d hops=[%d %.1f %d]",
					s.Cycles, s.Exchanges, s.Failures, s.Served, s.ViewSize, s.HopMin, s.HopMean, s.HopMax)
				if s.Wire != nil {
					parts := make([]string, 0, 9)
					for _, c := range s.Wire.Named() {
						parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
					}
					log.Printf("wire: %s", strings.Join(parts, " "))
				}
				if s.Latency != nil && s.Latency.Count > 0 {
					log.Printf("latency: p50=%.2fms p99=%.2fms over %d exchanges",
						s.Latency.Quantile(0.50)*1000, s.Latency.Quantile(0.99)*1000, s.Latency.Count)
				}
			}
			if peer, err := node.GetPeer(); err == nil {
				log.Printf("getPeer() -> %s", peer)
			}
		}
	}
}
