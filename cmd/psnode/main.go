// Command psnode runs a real peer sampling node: the deployable daemon
// form of the service. Peers find each other through the -contacts
// bootstrap list and keep gossiping membership from then on. The wire
// backend is selected with -transport: "tcp-pooled" (persistent
// connections, the default), "tcp" (dial per exchange) or "udp" (one
// datagram per message).
//
// Usage:
//
//	psnode -listen 127.0.0.1:7946
//	psnode -listen 127.0.0.1:7947 -contacts 127.0.0.1:7946 -transport udp
//
// The listener is hardened against hostile networks: -max-conns caps the
// connections served concurrently (excess accepts are closed and counted)
// and -keepalive sets the read budget a served connection earns after its
// first pull; peers that only ever push get 3/4 of it, and a connection
// that never sends its opening frame is dropped at the slowloris window.
// Zero values select the library defaults (1024 conns, 2m keep-alive).
//
// Every -report interval the daemon prints its current view, a getPeer()
// sample and wire-level transport counters (including rejected and
// evicted connections). Stop with SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"peersampling"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("psnode: ")

	var (
		listen  = flag.String("listen", "127.0.0.1:0", "listen address")
		backend = flag.String("transport", "tcp-pooled",
			fmt.Sprintf("wire backend, one of %v; tcp and tcp-pooled interoperate, udp nodes only reach udp nodes", peersampling.TransportBackends()))
		contacts  = flag.String("contacts", "", "comma-separated bootstrap addresses")
		protoFlag = flag.String("protocol", "(rand,head,pushpull)", "protocol tuple")
		viewSize  = flag.Int("c", 30, "view size")
		period    = flag.Duration("period", time.Second, "gossip period T")
		report    = flag.Duration("report", 5*time.Second, "view report interval")
		diverse   = flag.Bool("diverse", false, "diversity-maximising getPeer")
		maxConns  = flag.Int("max-conns", 0,
			"max connections served concurrently (0 = default 1024, negative = unlimited)")
		keepalive = flag.Duration("keepalive", 0,
			"keep-alive budget for served connections that pull (0 = default 2m; push-only peers get 3/4 of it)")
	)
	flag.Parse()

	proto, err := peersampling.ParseProtocol(*protoFlag)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := peersampling.NewTransportFactoryLimits(*backend, *listen, peersampling.TransportLimits{
		MaxConns:  *maxConns,
		KeepAlive: *keepalive,
	})
	if err != nil {
		log.Fatal(err)
	}
	node, err := peersampling.NewNode(peersampling.NodeConfig{
		Protocol: proto,
		ViewSize: *viewSize,
		Period:   *period,
		Diverse:  *diverse,
		OnError:  func(err error) { log.Printf("exchange failed: %v", err) },
	}, factory)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	if *contacts != "" {
		list := strings.Split(*contacts, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		if err := node.Init(list); err != nil {
			log.Fatal(err)
		}
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%s), protocol %s, c=%d, period %v", node.Addr(), *backend, proto, *viewSize, *period)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			log.Print("shutting down")
			return
		case <-ticker.C:
			view := node.View()
			entries := make([]string, len(view))
			for i, d := range view {
				entries[i] = fmt.Sprintf("%s@%d", d.Addr, d.Hop)
			}
			cycles, exchanges, failures, handled := node.Stats()
			log.Printf("view(%d): %s", len(view), strings.Join(entries, " "))
			log.Printf("stats: cycles=%d exchanges=%d failures=%d served=%d", cycles, exchanges, failures, handled)
			if ts, ok := node.TransportStats(); ok {
				log.Printf("wire: dials=%d reuses=%d out=%dB in=%dB dropped=%d rejects=%d evictions=%d",
					ts.Dials, ts.Reuses, ts.BytesOut, ts.BytesIn, ts.DatagramsDropped,
					ts.AcceptRejects, ts.KeepAliveEvictions)
			}
			if peer, err := node.GetPeer(); err == nil {
				log.Printf("getPeer() -> %s", peer)
			}
		}
	}
}
