// Command psload pressure-tests sampling gateways: an open-loop load
// generator driving many emulated HTTP clients against one or more
// psnode gateway endpoints, reporting latency quantiles, 429/503 rates
// and sample freshness.
//
// Usage:
//
//	psload -targets 127.0.0.1:8080 -clients 100 -rps 10 -duration 10s
//	psload -targets 127.0.0.1:8080,127.0.0.1:8081 -clients 1000 -rps 2 \
//	       -n 4 -spoof-clients -csv load.csv
//
// -spoof-clients sends a distinct X-Forwarded-For address per emulated
// client; pair it with gateway.trust_proxy_header=true on the target so
// the per-client rate limit sees thousands of clients instead of one
// loopback socket. -csv appends the run's per-target tallies in the
// repository's long-form schema (target,cycle,metric,value).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"peersampling/internal/load"
	"peersampling/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psload: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		targets     = flag.String("targets", "", "comma-separated gateway addresses (host:port), required")
		clients     = flag.Int("clients", 100, "concurrent emulated clients")
		rps         = flag.Float64("rps", 5, "requests per second per client")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		n           = flag.Int("n", 1, "peers requested per call (?n=)")
		noKeepalive = flag.Bool("no-keepalive", false, "fresh TCP connection per request")
		spoof       = flag.Bool("spoof-clients", false,
			"send a distinct X-Forwarded-For per client (target needs gateway.trust_proxy_header)")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request timeout")
		maxInFlight = flag.Int("max-inflight", 4, "per-client in-flight request cap")
		csvPath     = flag.String("csv", "", "append the run's long-form CSV rows to this file")
		cycle       = flag.Int("cycle", 0, "cycle column for -csv rows (stage index when scripting ramps)")
	)
	flag.Parse()

	if *targets == "" {
		return fmt.Errorf("-targets is required (gateway host:port list)")
	}
	var addrs []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			addrs = append(addrs, t)
		}
	}

	// SIGINT/SIGTERM end the run early but still report what was measured.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := load.Run(ctx, load.Config{
		Targets:           addrs,
		Clients:           *clients,
		RPS:               *rps,
		Duration:          *duration,
		N:                 *n,
		DisableKeepAlives: *noKeepalive,
		SpoofClients:      *spoof,
		Timeout:           *timeout,
		MaxInFlight:       *maxInFlight,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	if *csvPath != "" {
		if err := appendCSV(*csvPath, res.Rows(*cycle)); err != nil {
			return err
		}
		fmt.Printf("appended %s\n", *csvPath)
	}
	return nil
}

// appendCSV appends rows to path, writing the long-form header only
// when the file is new or empty — the same append contract as the
// metrics dumper, so staged runs build one parseable document.
func appendCSV(path string, rows []metrics.LongRow) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		b.WriteString(metrics.LongHeader("target"))
	}
	metrics.AppendLongRows(&b, rows)
	_, err = f.WriteString(b.String())
	return err
}
