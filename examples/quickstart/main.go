// Command quickstart spins up a small in-process cluster of peer sampling
// nodes (Newscast configuration), lets them gossip for a moment, and then
// uses the service API — init() and getPeer() — the way a gossip
// application would.
package main

import (
	"fmt"
	"log"
	"time"

	"peersampling"
)

func main() {
	const (
		clusterSize = 20
		viewSize    = 8
	)

	// The in-memory fabric stands in for a real network; swap in
	// peersampling.PooledTCPFactory("127.0.0.1:0") to run over TCP. The
	// listen address is also the node's gossip identity, so on a real
	// network bind an address peers can reach, not the wildcard.
	fabric := peersampling.NewFabric()
	factory := fabric.Factory("node")

	nodes := make([]*peersampling.Node, 0, clusterSize)
	for i := 0; i < clusterSize; i++ {
		node, err := peersampling.NewNode(peersampling.NodeConfig{
			Protocol: peersampling.Newscast(),
			ViewSize: viewSize,
			Period:   20 * time.Millisecond,
			Seed:     uint64(i) + 1,
		}, factory)
		if err != nil {
			log.Fatalf("creating node: %v", err)
		}
		defer node.Close()
		nodes = append(nodes, node)
	}

	// Bootstrap: every node knows exactly one contact (its ring
	// neighbour); gossip does the rest.
	for i, node := range nodes {
		if err := node.Init([]string{nodes[(i+1)%clusterSize].Addr()}); err != nil {
			log.Fatalf("init: %v", err)
		}
		if err := node.Start(); err != nil {
			log.Fatalf("start: %v", err)
		}
	}

	// Let the active threads run a few periods.
	time.Sleep(500 * time.Millisecond)

	fmt.Println("view of node-0 after convergence:")
	for _, d := range nodes[0].View() {
		fmt.Printf("  %-8s (age %d)\n", d.Addr, d.Hop)
	}

	fmt.Println("\nten getPeer() samples from node-0:")
	for i := 0; i < 10; i++ {
		peer, err := nodes[0].GetPeer()
		if err != nil {
			log.Fatalf("getPeer: %v", err)
		}
		fmt.Printf("  %s\n", peer)
	}

	cycles, exchanges, failures, handled := nodes[0].Stats()
	fmt.Printf("\nnode-0 stats: %d cycles, %d active exchanges (%d failed), %d passive exchanges served\n",
		cycles, exchanges, failures, handled)
}
