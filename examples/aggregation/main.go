// Command aggregation runs gossip-based push-pull averaging over the peer
// sampling service, including the classic network-size estimation trick:
// one node starts with value 1, everyone else with 0, and every estimate
// converges to 1/N.
package main

import (
	"fmt"
	"log"

	"peersampling"
	"peersampling/aggregate"
)

func main() {
	const (
		n        = 1000
		viewSize = 30
		rounds   = 30
	)

	overlay := peersampling.NewRandomOverlay(peersampling.SimConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: viewSize,
		Seed:     11,
	}, n)
	overlay.Run(30) // converge the sampling layer first

	// Average an arbitrary value distribution.
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	res, err := aggregate.Run(values, aggregate.Config{Rounds: rounds, Seed: 3},
		peersampling.NewOverlayPeers(overlay))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("push-pull averaging over a Newscast overlay, N=%d, %d rounds\n", n, rounds)
	fmt.Printf("  true mean            %.4f\n", res.TrueMean)
	fmt.Printf("  node-0 estimate      %.4f\n", res.Estimates[0])
	fmt.Printf("  max error            %.2e\n", res.MaxError)
	fmt.Printf("  variance: %.3g -> %.3g (factor %.3f per round)\n",
		res.VariancePerRound[0], res.VariancePerRound[len(res.VariancePerRound)-1],
		res.ConvergenceRate())

	// Size estimation: value 1 at node 0, 0 elsewhere; estimates -> 1/N.
	sizeInit := make([]float64, n)
	sizeInit[0] = 1
	sres, err := aggregate.Run(sizeInit, aggregate.Config{Rounds: 40, Seed: 4},
		peersampling.NewOverlayPeers(overlay))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnetwork size estimation (true N = %d):\n", n)
	for _, id := range []int{0, 1, n / 2, n - 1} {
		fmt.Printf("  node %-5d estimates N ≈ %.1f\n", id, aggregate.SizeEstimate(sres.Estimates[id]))
	}
}
