// Command healing reproduces the paper's self-healing experiment
// (Figure 7) interactively: half of a converged overlay fails at once and
// the program tracks how quickly each view selection policy flushes the
// resulting dead links. Head view selection heals exponentially fast;
// random view selection at best linearly.
package main

import (
	"fmt"

	"peersampling"
)

func main() {
	const (
		n        = 2000
		viewSize = 30
		converge = 120
		horizon  = 60
	)

	protocols := []struct {
		name  string
		proto peersampling.Protocol
	}{
		{"(rand,head,pushpull)  fast healer", peersampling.Newscast()},
		{"(rand,rand,pushpull)  slow healer", peersampling.Protocol{
			PeerSel: peersampling.PeerRand,
			ViewSel: peersampling.ViewRand,
			Prop:    peersampling.PushPull,
		}},
	}

	fmt.Printf("self-healing after 50%% node failure, N=%d, c=%d\n\n", n, viewSize)
	for _, p := range protocols {
		overlay := peersampling.NewRandomOverlay(peersampling.SimConfig{
			Protocol: p.proto,
			ViewSize: viewSize,
			Seed:     21,
		}, n)
		overlay.Run(converge)
		killed := overlay.KillFraction(0.5)

		fmt.Printf("%s — failed %d nodes at cycle %d\n", p.name, len(killed), converge)
		fmt.Printf("  %-8s %s\n", "cycle", "dead links in live views")
		for c := 0; c <= horizon; c++ {
			if c%10 == 0 {
				fmt.Printf("  +%-7d %d\n", c, overlay.DeadLinks())
			}
			overlay.RunCycle()
		}
		fmt.Println()
	}
}
