// Command dissemination compares epidemic broadcast over a gossip-based
// peer sampling overlay against the idealised uniform sampler the
// literature assumes — the paper's motivating application (Section 1).
//
// It prints the infection curve for both peer sources and for two overlay
// protocols, demonstrating that the non-uniform overlays still spread
// rumors in O(log N) rounds.
package main

import (
	"fmt"
	"log"

	"peersampling"
	"peersampling/broadcast"
)

func main() {
	const (
		n        = 2000
		viewSize = 30
		fanout   = 2
		warmup   = 30
	)

	sources := []struct {
		name string
		src  peersampling.WorkloadSource
	}{
		{"uniform (ideal)", peersampling.NewUniformPeers(n, 1, broadcast.UniformSalt)},
		{"newscast overlay", overlaySource(n, viewSize, peersampling.Newscast(), warmup)},
		{"lpbcast overlay", overlaySource(n, viewSize, peersampling.Lpbcast(), warmup)},
	}

	fmt.Printf("epidemic broadcast, N=%d, fanout=%d, infect-forever\n\n", n, fanout)
	fmt.Printf("%-18s %-10s %s\n", "peer source", "rounds", "infection curve (nodes per round)")
	for _, s := range sources {
		res, err := broadcast.Run(broadcast.Config{
			Fanout:    fanout,
			Mode:      broadcast.InfectForever,
			MaxRounds: 60,
			Seed:      42,
		}, s.src)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		curve := res.InfectedPerRound
		if len(curve) > 12 {
			curve = curve[:12]
		}
		fmt.Printf("%-18s %-10d %v\n", s.name, res.RoundsToAll, curve)
	}
}

func overlaySource(n, viewSize int, proto peersampling.Protocol, warmup int) peersampling.WorkloadSource {
	overlay := peersampling.NewRandomOverlay(peersampling.SimConfig{
		Protocol: proto,
		ViewSize: viewSize,
		Seed:     7,
	}, n)
	overlay.Run(warmup)
	return peersampling.NewOverlayPeers(overlay)
}
