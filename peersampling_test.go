package peersampling_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"peersampling"
)

func TestFacadeProtocolHelpers(t *testing.T) {
	if got := peersampling.Newscast().String(); got != "(rand,head,pushpull)" {
		t.Errorf("Newscast = %s", got)
	}
	if got := peersampling.Lpbcast().String(); got != "(rand,rand,push)" {
		t.Errorf("Lpbcast = %s", got)
	}
	p, err := peersampling.ParseProtocol("(tail,rand,push)")
	if err != nil {
		t.Fatal(err)
	}
	if p.PeerSel != peersampling.PeerTail || p.ViewSel != peersampling.ViewRand || p.Prop != peersampling.Push {
		t.Errorf("parsed %+v", p)
	}
	if len(peersampling.AllProtocols()) != 27 {
		t.Error("AllProtocols != 27")
	}
	if len(peersampling.StudiedProtocols()) != 8 {
		t.Error("StudiedProtocols != 8")
	}
}

func TestFacadeNodeLifecycle(t *testing.T) {
	fabric := peersampling.NewFabric()
	factory := fabric.Factory("fx")
	a, err := peersampling.NewNode(peersampling.NodeConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: 4,
		Period:   time.Hour,
		Seed:     1,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := peersampling.NewNode(peersampling.NodeConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: 4,
		Period:   time.Hour,
		Seed:     2,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Init([]string{b.Addr()}); err != nil {
		t.Fatal(err)
	}
	a.Tick()
	peer, err := a.GetPeer()
	if err != nil {
		t.Fatal(err)
	}
	if peer != b.Addr() {
		t.Errorf("GetPeer = %q want %q", peer, b.Addr())
	}
	// b learned about a through the pushpull exchange.
	found := false
	for _, d := range b.View() {
		if d.Addr == a.Addr() {
			found = true
		}
	}
	if !found {
		t.Error("passive side did not learn the initiator")
	}
}

func TestFacadeFabricOptions(t *testing.T) {
	fabric := peersampling.NewFabric(
		peersampling.FabricLatency(time.Millisecond),
		peersampling.FabricLoss(0, 1),
	)
	if fabric == nil {
		t.Fatal("nil fabric")
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := peersampling.SimConfig{Protocol: peersampling.Newscast(), ViewSize: 15, Seed: 3}
	w, err := peersampling.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Error("fresh simulation not empty")
	}
	overlay := peersampling.NewRandomOverlay(cfg, 200)
	overlay.Run(10)
	obs := overlay.Observe(peersampling.MetricsConfig{PathSources: 10, ClusteringSample: 50, Seed: 4})
	if obs.LiveNodes != 200 || obs.Components != 1 {
		t.Errorf("random overlay observation %+v", obs)
	}
	lattice := peersampling.NewLatticeOverlay(cfg, 100)
	snap := lattice.TakeSnapshot()
	lo, hi := snap.Graph.MinMaxDegree()
	// With odd c the one-sided extra neighbour is mirrored by the reverse
	// direction, so every undirected degree is c+1.
	if lo != 16 || hi != 16 {
		t.Errorf("lattice degrees [%d,%d] want exactly 16", lo, hi)
	}
	if _, err := peersampling.NewSimulation(peersampling.SimConfig{}); err == nil {
		t.Error("invalid sim config accepted")
	}
}

func TestFacadeCombined(t *testing.T) {
	fabric := peersampling.NewFabric()
	svc, err := peersampling.NewCombined(
		peersampling.NodeConfig{Protocol: peersampling.Newscast(), ViewSize: 4, Period: time.Hour},
		peersampling.NodeConfig{Protocol: peersampling.Lpbcast(), ViewSize: 4, Period: time.Hour},
		fabric.Factory("cmb"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var _ peersampling.Service = svc
}

func TestFacadeTCPFactory(t *testing.T) {
	node, err := peersampling.NewNode(peersampling.NodeConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: 4,
		Period:   time.Hour,
	}, peersampling.TCPFactory("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Addr() == "" || node.Addr() == "127.0.0.1:0" {
		t.Errorf("TCP address not resolved: %q", node.Addr())
	}
}

// TestFacadeRealBackendsGossip runs a small gossip cluster over every
// registered wire backend and checks views converge and wire counters
// advance.
func TestFacadeRealBackendsGossip(t *testing.T) {
	factories := map[string]func() peersampling.TransportFactory{
		"tcp":        func() peersampling.TransportFactory { return peersampling.TCPFactory("127.0.0.1:0") },
		"tcp-pooled": func() peersampling.TransportFactory { return peersampling.PooledTCPFactory("127.0.0.1:0") },
		"udp":        func() peersampling.TransportFactory { return peersampling.UDPFactory("127.0.0.1:0") },
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			var nodes []*peersampling.Node
			for i := 0; i < 4; i++ {
				n, err := peersampling.NewNode(peersampling.NodeConfig{
					Protocol: peersampling.Newscast(),
					ViewSize: 4,
					Period:   time.Hour,
					Seed:     uint64(i) + 1,
				}, mk())
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				nodes = append(nodes, n)
			}
			for i, n := range nodes {
				if err := n.Init([]string{nodes[(i+1)%len(nodes)].Addr()}); err != nil {
					t.Fatal(err)
				}
			}
			for c := 0; c < 10; c++ {
				for _, n := range nodes {
					n.Tick()
				}
			}
			for _, n := range nodes {
				if len(n.View()) < len(nodes)-1 {
					t.Errorf("%s view has %d entries want %d", n.Addr(), len(n.View()), len(nodes)-1)
				}
				stats, ok := n.TransportStats()
				if !ok {
					t.Fatalf("%s backend reports no transport stats", name)
				}
				if stats.BytesOut == 0 || stats.BytesIn == 0 {
					t.Errorf("%s wire counters flat: %+v", name, stats)
				}
				if name == "tcp-pooled" && stats.Reuses == 0 {
					t.Errorf("pooled backend never reused a connection: %+v", stats)
				}
			}
		})
	}
}

func TestFacadeTransportRegistry(t *testing.T) {
	names := peersampling.TransportBackends()
	if len(names) < 3 {
		t.Fatalf("backends = %v", names)
	}
	factory, err := peersampling.NewTransportFactory("tcp-pooled", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := peersampling.NewNode(peersampling.NodeConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: 4,
		Period:   time.Hour,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := peersampling.NewTransportFactory("nope", "127.0.0.1:0"); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestFacadeObservability drives the exported metrics surface the way a
// deployment would: a collector over a live fabric pair, scraped over
// HTTP and dumped as CSV.
func TestFacadeObservability(t *testing.T) {
	fabric := peersampling.NewFabric()
	cfg := peersampling.NodeConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: 4,
		Period:   time.Hour,
	}
	a, err := peersampling.NewNode(cfg, fabric.Factory("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := peersampling.NewNode(cfg, fabric.Factory("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Init([]string{b.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Init([]string{a.Addr()}); err != nil {
		t.Fatal(err)
	}
	a.Tick()
	b.Tick()

	coll := peersampling.NewCollector()
	coll.Register("a", a)
	coll.Register("b", b)

	srv, err := peersampling.NewMetricsServer(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `peersampling_cycles_total{node="a"`) {
		t.Errorf("scrape missing node a cycles:\n%s", body)
	}

	var buf bytes.Buffer
	if peersampling.MetricsFormatForPath("x.jsonl") != peersampling.MetricsJSONL {
		t.Error("jsonl extension not detected")
	}
	dumper := peersampling.NewMetricsDumper(coll, &buf, peersampling.MetricsCSV)
	if err := dumper.Dump(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "node,cycle,metric,value\n") {
		t.Errorf("dump header wrong:\n%s", buf.String())
	}
	snaps := coll.Snapshot()
	if len(snaps) != 2 || snaps[0].Cycles != 1 {
		t.Errorf("snapshots wrong: %+v", snaps)
	}
}
