package peersampling_test

import (
	"fmt"
	"time"

	"peersampling"
)

// Example_quickstart runs a two-node cluster on the in-memory fabric —
// the smallest complete use of the paper's init()/getPeer() API. Swap the
// fabric factory for PooledTCPFactory (or NewTransportFactory) to take
// the identical code onto a real network.
func Example_quickstart() {
	fabric := peersampling.NewFabric()
	cfg := peersampling.NodeConfig{
		Protocol: peersampling.Newscast(), // (rand,head,pushpull)
		ViewSize: 30,
		Period:   time.Second,
		Seed:     1, // fixed seed only so the example output is stable
	}
	factory := fabric.Factory("node")

	a, err := peersampling.NewNode(cfg, factory)
	if err != nil {
		panic(err)
	}
	defer a.Close()
	b, err := peersampling.NewNode(cfg, factory)
	if err != nil {
		panic(err)
	}
	defer b.Close()

	// Bootstrap b from a (the paper's init), then run a few gossip cycles.
	// A real deployment calls Start() and lets the period timer drive
	// this; Tick() is the same cycle, synchronously.
	if err := b.Init([]string{a.Addr()}); err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		b.Tick()
		a.Tick()
	}

	// getPeer: a uniform sample from the continuously refreshed view.
	peerOfA, _ := a.GetPeer()
	peerOfB, _ := b.GetPeer()
	fmt.Println(peerOfA, peerOfB)
	// Output: node-1 node-0
}

// ExampleNode_TransportStats shows the wire-level counters a real backend
// keeps: dials, pooled-connection reuses, bytes moved, and the hardening
// counters (connections rejected at the Limits cap, keep-alive
// evictions). The in-memory fabric keeps no counters, which the second
// return value reports.
func ExampleNode_TransportStats() {
	cfg := peersampling.NodeConfig{
		Protocol: peersampling.Newscast(),
		ViewSize: 30,
		Period:   time.Second,
		Seed:     1,
	}
	server, err := peersampling.NewNode(cfg, peersampling.TCPFactory("127.0.0.1:0"))
	if err != nil {
		panic(err)
	}
	defer server.Close()
	client, err := peersampling.NewNode(cfg, peersampling.TCPFactory("127.0.0.1:0",
		peersampling.TransportLimits{MaxConns: 64}))
	if err != nil {
		panic(err)
	}
	defer client.Close()

	if err := client.Init([]string{server.Addr()}); err != nil {
		panic(err)
	}
	client.Tick() // one real pushpull exchange over loopback TCP

	stats, ok := client.TransportStats()
	fmt.Println(ok, stats.Dials, stats.AcceptRejects)
	// Output: true 1 0
}
